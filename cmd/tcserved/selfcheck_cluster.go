package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"reflect"
	"sync"
	"time"

	"tcsim"
	"tcsim/client"
	"tcsim/internal/cluster"
	"tcsim/internal/obs"
	"tcsim/internal/server"
	"tcsim/internal/tracestore"
)

// clusterNode is one in-process backend of the selfcheck cluster: a
// full server.Server with an isolated trace store (wired to the
// gateway's trace CDN) and a persistent trace directory that survives
// the kill/restart the check performs.
type clusterNode struct {
	name    string
	addr    string // host:port, stable across restart (the ring identity is name, but reusing the addr exercises rebinding)
	dir     string
	store   *tcsim.TraceStore
	srv     *server.Server
	httpSrv *http.Server
}

// startClusterNode boots one node on addr ("127.0.0.1:0" = ephemeral).
// Every node resolves capture misses through the gateway CDN first.
func startClusterNode(scfg server.Config, name, addr, dir, gwURL string) (*clusterNode, error) {
	st := tcsim.NewTraceStore(0)
	st.SetDir(dir)
	st.SetFetcher(cluster.TraceFetcher(gwURL, nil))
	cfg := scfg
	cfg.Engine.Store = st
	cfg.Service = name // span services are node names: a collated tree shows which node ran what
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("node %s: %w", name, err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	return &clusterNode{
		name: name, addr: ln.Addr().String(), dir: dir,
		store: st, srv: srv, httpSrv: httpSrv,
	}, nil
}

// kill closes the node's listener and every open connection — a crash,
// not a drain. The server object is abandoned (shut down asynchronously
// for goroutine hygiene); its counters are gone, like a real process's.
func (n *clusterNode) kill() {
	n.httpSrv.Close()
	go func(s *server.Server) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}(n.srv)
}

// emulatedCaptures is how many correct-path streams a store actually
// emulated: total captures minus the ones satisfied from disk or
// fetched from a cluster peer.
func emulatedCaptures(st tcsim.TraceStoreStats) uint64 {
	return st.Captures - st.DiskLoads - st.CDNFetches
}

// runClusterSelfcheck boots a 3-node cluster behind a tcgate gateway
// and drives it the way the single-node check drives one daemon —
// thousands of mixed sync/async jobs plus a sweep, every response
// bit-for-bit DeepEqual to a direct run — while also killing and
// restarting a node mid-load, and asserting the cluster's economics:
// each workload's trace is emulated exactly once cluster-wide (all
// other nodes fetch it through the content-addressed CDN), re-hash
// failover masks the dead node, and the gateway's aggregated metrics
// agree with the nodes' own counters.
func runClusterSelfcheck(stdout, stderr io.Writer, scfg server.Config, jobs int, insts uint64, flightDir string) int {
	t0 := time.Now()
	if jobs < 2000 {
		jobs = 2000
	}
	var fails checkFailure
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()

	// The storm repeats 24 unique configs; nodes need queue room, and
	// the per-node request log would drown the report.
	scfg.Engine.Queue = 4096
	scfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))

	fatal := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "tcserved cluster selfcheck: "+format+"\n", args...)
		return 1
	}

	// Reserve the gateway's address first: nodes need its URL for their
	// CDN fetchers before the gateway (which needs their URLs) exists.
	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fatal("%v", err)
	}
	gwURL := "http://" + gwLn.Addr().String()

	names := []string{"node0", "node1", "node2"}
	nodes := make([]*clusterNode, len(names))
	cfgNodes := make([]cluster.Node, len(names))
	for i, name := range names {
		dir, err := os.MkdirTemp("", "tcsim-cluster-"+name+"-*")
		if err != nil {
			return fatal("%v", err)
		}
		defer os.RemoveAll(dir)
		n, err := startClusterNode(scfg, name, "127.0.0.1:0", dir, gwURL)
		if err != nil {
			return fatal("%v", err)
		}
		nodes[i] = n
		cfgNodes[i] = cluster.Node{Name: name, URL: "http://" + n.addr}
	}
	g, err := cluster.New(cluster.Config{
		Nodes:         cfgNodes,
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  2 * time.Second,
		Logger:        scfg.Logger,
	})
	if err != nil {
		return fatal("%v", err)
	}
	g.Start()
	gwHTTP := &http.Server{Handler: g.Handler()}
	go gwHTTP.Serve(gwLn)
	gcl := client.New(gwURL)
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		gwHTTP.Shutdown(sctx)
		g.Shutdown(sctx)
		for _, n := range nodes {
			n.httpSrv.Shutdown(sctx)
			n.srv.Shutdown(sctx)
		}
	}()

	if err := gcl.Ready(ctx); err != nil {
		return fatal("gateway readiness: %v", err)
	}

	// Direct-run references, exactly like the single-node phase. The
	// reference runs take a Program, bypassing every trace store, so
	// they cannot perturb the cluster's capture accounting.
	type testCase struct {
		req      client.JobRequest
		key      string
		expected tcsim.Result
	}
	var unique []testCase
	for _, w := range selfcheckWorkloads {
		for _, cfg := range selfcheckConfigs {
			req := cfg
			req.Workload = w
			req.Insts = insts
			dcfg, key, err := server.ResolveConfig(&req, server.Limits{})
			if err != nil {
				return fatal("resolve %s: %v", w, err)
			}
			expected, err := tcsim.Run(dcfg, mustProgram(w))
			if err != nil {
				return fatal("direct run %s: %v", w, err)
			}
			unique = append(unique, testCase{req: req, key: key, expected: expected})
		}
	}

	// Warm phase: one baseline job per workload, sequentially, so each
	// workload's trace is emulated exactly once — on its ring owner —
	// before concurrent load starts. Everything after either replays
	// locally or fetches through the CDN; emulating again is a failure.
	ring := cluster.NewRing(names, 0)
	baselineKey := map[string]string{}
	for _, w := range selfcheckWorkloads {
		req := selfcheckConfigs[0]
		req.Workload = w
		req.Insts = insts
		_, key, err := server.ResolveConfig(&req, server.Limits{})
		if err != nil {
			return fatal("resolve warm %s: %v", w, err)
		}
		baselineKey[w] = key
		job, err := gcl.SubmitJob(ctx, &req)
		if err != nil {
			return fatal("warm job %s: %v", w, err)
		}
		if job.State != client.StateDone {
			return fatal("warm job %s finished %q", w, job.State)
		}
	}

	// wave fires n mixed sync/async jobs from the shuffled storm and
	// waits for all of them; every response must match its reference.
	rng := rand.New(rand.NewSource(2))
	wave := func(label string, n int) {
		var wg sync.WaitGroup
		sem := make(chan struct{}, 16)
		for i := 0; i < n; i++ {
			tc := unique[rng.Intn(len(unique))]
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				var job *client.Job
				var err error
				if i%3 == 0 {
					job, err = gcl.SubmitJobAsync(ctx, &tc.req)
					if err == nil {
						job, err = gcl.WaitJob(ctx, job.ID, 2*time.Millisecond)
					}
				} else {
					job, err = gcl.SubmitJob(ctx, &tc.req)
				}
				if err != nil {
					fails.failf("%s job %d (%s): %v", label, i, tc.req.Workload, err)
					return
				}
				if job.State != client.StateDone || job.Result == nil {
					fails.failf("%s job %d (%s): state %q, error %q", label, i, tc.req.Workload, job.State, job.Error)
					return
				}
				if job.Key != tc.key {
					fails.failf("%s job %d: server key %s != client key %s", label, i, job.Key, tc.key)
				}
				if !reflect.DeepEqual(*job.Result, tc.expected) {
					fails.failf("%s job %d (%s, key %s): cluster result differs from direct run (IPC %v vs %v)",
						label, i, tc.req.Workload, tc.key, job.Result.IPC, tc.expected.IPC)
				}
			}()
		}
		wg.Wait()
	}

	wave("full-cluster", jobs/2)

	// Kill the node that owns the first workload's baseline trace — it
	// is guaranteed to have originated at least one capture — and keep
	// loading: everything it owned must re-hash to its ring successors.
	victim := ring.Owner(baselineKey[selfcheckWorkloads[0]])
	victimSnap := nodes[victim].store.Stats()
	nodes[victim].kill()

	// The victim may have been the only holder of some workloads'
	// traces (their every config key hashed to it). Those are "lost":
	// the surviving owner legitimately emulates each once more. Count
	// them now, then re-warm sequentially so the concurrent wave can
	// never race two survivors into emulating the same lost trace twice.
	lost := 0
	for _, w := range selfcheckWorkloads {
		avail := false
		for i, n := range nodes {
			if i == victim {
				continue
			}
			if _, err := n.store.ExportBytes(w, insts, false); err == nil {
				avail = true
				break
			}
		}
		if !avail {
			lost++
		}
	}
	for _, w := range selfcheckWorkloads {
		req := selfcheckConfigs[0]
		req.Workload = w
		req.Insts = insts
		if job, err := gcl.SubmitJob(ctx, &req); err != nil {
			fails.failf("re-warm job %s on degraded cluster: %v", w, err)
		} else if job.State != client.StateDone {
			fails.failf("re-warm job %s finished %q", w, job.State)
		}
	}

	wave("degraded", jobs/4)

	status, err := gcl.Cluster(ctx)
	if err != nil {
		fails.failf("GET /v1/cluster: %v", err)
	} else {
		if status.Healthy != len(names)-1 {
			fails.failf("degraded cluster reports %d healthy nodes, want %d", status.Healthy, len(names)-1)
		}
		if vs := status.Nodes[victim]; vs.Healthy || vs.Demotions == 0 {
			fails.failf("killed node %s status = %+v, want demoted", names[victim], vs)
		}
	}

	// Restart the victim on its old address with a FRESH store (its
	// counters died with it) but the same trace directory: captures must
	// come back from disk or the CDN, never by re-emulating.
	restarted, err := startClusterNode(scfg, names[victim], nodes[victim].addr, nodes[victim].dir, gwURL)
	if err != nil {
		return fatal("restart %s: %v", names[victim], err)
	}
	nodes[victim] = restarted
	promoted := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(20 * time.Millisecond) {
		if s, err := gcl.Cluster(ctx); err == nil && s.Healthy == len(names) {
			promoted = true
			break
		}
	}
	if !promoted {
		fails.failf("restarted node %s was not promoted back within 10s", names[victim])
	}

	wave("restored", jobs/4)

	// Sweep through the gateway: rows must be bit-for-bit the job-phase
	// references, in cell order.
	sweepWLs := selfcheckWorkloads[:3]
	sweep, err := gcl.Sweep(ctx, &client.SweepRequest{
		Workloads: sweepWLs,
		Configs:   []client.JobRequest{{}, {Preset: client.PresetAll}},
		Insts:     insts,
	})
	if err != nil {
		fails.failf("cluster sweep: %v", err)
		sweep = &client.SweepResponse{}
	} else {
		if sweep.Cells != len(sweepWLs)*2 || len(sweep.Rows) != sweep.Cells {
			fails.failf("cluster sweep: %d cells, %d rows (want %d)", sweep.Cells, len(sweep.Rows), len(sweepWLs)*2)
		}
		byKey := make(map[string]tcsim.Result)
		for _, tc := range unique {
			byKey[tc.key] = tc.expected
		}
		for _, row := range sweep.Rows {
			ref, ok := byKey[row.Key]
			if !ok {
				fails.failf("cluster sweep cell %s: key %s not among the job-phase keys", row.Workload, row.Key)
				continue
			}
			if row.IPC != ref.IPC || row.Cycles != ref.Cycles || row.Retired != ref.Retired {
				fails.failf("cluster sweep cell %s/%s: IPC %v cycles %d != direct %v/%d",
					row.Workload, row.Key, row.IPC, row.Cycles, ref.IPC, ref.Cycles)
			}
		}
	}

	// Error passthrough: a bad request must fail fast at the gateway
	// with the node vocabulary, not a 502.
	var apiErr *client.APIError
	if _, err := gcl.SubmitJob(ctx, &client.JobRequest{Workload: "no-such-workload"}); !errors.As(err, &apiErr) ||
		apiErr.Status != http.StatusBadRequest || apiErr.Code != "invalid_argument" {
		fails.failf("invalid workload via gateway = %v, want 400 invalid_argument", err)
	}

	// Sampled job through the gateway: the sampling plan is part of the
	// canonical key, so the gateway must route it like any job and the
	// estimate must come back bit-for-bit a direct run's. Warm-mode only:
	// a seek job above the full-capture limit would emulate a fresh
	// checkpoint log on its owner and break the capture-once accounting
	// below. The direct reference replays the process-global store, never
	// touching any node's counters.
	sreq := client.JobRequest{Workload: selfcheckWorkloads[0], Insts: insts,
		SamplePeriod: insts / 4, SampleWindow: insts / 20, SampleWarmup: insts / 20}
	if sdcfg, skey, err := server.ResolveConfig(&sreq, server.Limits{}); err != nil {
		fails.failf("cluster sampled job: resolve: %v", err)
	} else if sexp, err := tcsim.RunWorkload(sdcfg, sreq.Workload); err != nil {
		fails.failf("cluster sampled job: direct run: %v", err)
	} else if job, err := gcl.SubmitJob(ctx, &sreq); err != nil {
		fails.failf("cluster sampled job: submit: %v", err)
	} else {
		if job.Key != skey {
			fails.failf("cluster sampled job: gateway key %s != client key %s", job.Key, skey)
		}
		if job.Result == nil || !reflect.DeepEqual(*job.Result, sexp) {
			fails.failf("cluster sampled job (key %s): gateway result differs from direct run", skey)
		}
		if job.Result != nil && (job.Result.Sampled == nil || job.Result.Sampled.Windows == 0) {
			fails.failf("cluster sampled job: result carries no sampled windows")
		}
	}

	// Trace CDN probes through the gateway.
	checkClusterCDN(ctx, gwURL, insts, &fails)

	// Capture-once economics, the cluster's core claim: across every
	// store that ever lived (the dead victim's counters were snapshotted
	// at kill time), each workload was EMULATED exactly once; every
	// other capture came from disk or a CDN peer.
	total := emulatedCaptures(victimSnap)
	var cdnFetches, cdnRejects uint64
	for i, n := range nodes {
		st := n.store.Stats()
		total += emulatedCaptures(st)
		cdnFetches += st.CDNFetches
		cdnRejects += st.CDNRejects
		if i == victim && emulatedCaptures(st) != 0 {
			fails.failf("restarted node re-emulated %d captures; disk and CDN should have covered all of them",
				emulatedCaptures(st))
		}
	}
	cdnFetches += victimSnap.CDNFetches
	cdnRejects += victimSnap.CDNRejects
	if want := uint64(len(selfcheckWorkloads) + lost); total != want {
		fails.failf("cluster emulated %d captures, want exactly %d (one per workload cluster-wide, +%d whose only copy died with the victim)",
			total, want, lost)
	}
	if cdnFetches == 0 {
		fails.failf("no node fetched a trace through the CDN — the cluster is not sharing captures")
	}
	if cdnRejects != 0 {
		fails.failf("CDN fail-closed validation rejected %d bodies from trusted peers", cdnRejects)
	}

	// Gateway aggregation: the exposition must parse, see all nodes
	// healthy, have counted the kill (demotion + re-hashes) and the
	// recovery (promotion), and its per-node capture samples must sum to
	// the live stores' own counters.
	checkGatewayMetrics(ctx, gwURL, nodes, &fails)

	// Distributed-tracing phase: force a failover on a dedicated
	// mini-cluster and assert the collated span tree is connected across
	// gateway and nodes, with the dead-owner retry visible.
	checkFailoverTrace(ctx, stderr, scfg, insts, flightDir, &fails)

	if len(fails.errs) > 0 {
		fmt.Fprintf(stderr, "tcserved cluster selfcheck: %d failure(s):\n", len(fails.errs))
		for _, e := range fails.errs {
			fmt.Fprintf(stderr, "  - %s\n", e)
		}
		flights := []*obs.FlightRecorder{g.Flight()}
		for _, n := range nodes {
			flights = append(flights, n.srv.Flight())
		}
		dumpFlights(stderr, flightDir, flights...)
		return 1
	}
	fmt.Fprintf(stdout,
		"tcserved cluster selfcheck ok: %d jobs across 3 nodes (+1 kill/restart) bit-for-bit identical to direct runs; "+
			"%d workloads emulated once cluster-wide (+%d re-captured after the kill orphaned them), "+
			"%d CDN fetches, 0 rejects; sweep %d cells; failover span tree connected; %.1fs\n",
		jobs, len(selfcheckWorkloads), lost, cdnFetches, sweep.Cells, time.Since(t0).Seconds())
	return 0
}

// checkFailoverTrace is the distributed-tracing assertion: a dedicated
// two-node mini-cluster whose readiness probes are effectively frozen
// (an hour apart), so killing a node leaves it on the ring and the next
// request addressed to it MUST fail over inside the request itself —
// producing a failed attempt span, a successful retry attempt span, and
// a node-side serve/run subtree, all under one gateway root. The check
// then collates GET /v1/trace/{id} and asserts the tree is CONNECTED:
// one root (at the gateway), every parent present, both services on
// record, and the run span carrying its capture/replay phase attribute.
func checkFailoverTrace(ctx context.Context, stderr io.Writer, scfg server.Config, insts uint64, flightDir string, fails *checkFailure) {
	before := len(fails.errs)

	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fails.failf("failover trace: %v", err)
		return
	}
	gwURL := "http://" + gwLn.Addr().String()

	names := []string{"ft-node0", "ft-node1"}
	nodes := make([]*clusterNode, len(names))
	cfgNodes := make([]cluster.Node, len(names))
	for i, name := range names {
		dir, err := os.MkdirTemp("", "tcsim-ft-"+name+"-*")
		if err != nil {
			gwLn.Close()
			fails.failf("failover trace: %v", err)
			return
		}
		defer os.RemoveAll(dir)
		n, err := startClusterNode(scfg, name, "127.0.0.1:0", dir, gwURL)
		if err != nil {
			gwLn.Close()
			fails.failf("failover trace: %v", err)
			return
		}
		nodes[i] = n
		cfgNodes[i] = cluster.Node{Name: name, URL: "http://" + n.addr}
	}
	g, err := cluster.New(cluster.Config{
		Nodes: cfgNodes,
		// Probes must NOT notice the kill: demotion would reorder the
		// candidate walk and the dead owner would never be attempted. An
		// hour between probes freezes the health view for the check.
		ProbeInterval: time.Hour,
		ProbeTimeout:  2 * time.Second,
		Logger:        scfg.Logger,
	})
	if err != nil {
		gwLn.Close()
		fails.failf("failover trace: %v", err)
		return
	}
	g.Start()
	gwHTTP := &http.Server{Handler: g.Handler()}
	go gwHTTP.Serve(gwLn)
	gcl := client.New(gwURL)
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		gwHTTP.Shutdown(sctx)
		g.Shutdown(sctx)
		for _, n := range nodes {
			n.httpSrv.Shutdown(sctx)
			n.srv.Shutdown(sctx)
		}
		if len(fails.errs) > before {
			flights := []*obs.FlightRecorder{g.Flight()}
			for _, n := range nodes {
				flights = append(flights, n.srv.Flight())
			}
			dumpFlights(stderr, flightDir, flights...)
		}
	}()

	if err := gcl.Ready(ctx); err != nil {
		fails.failf("failover trace: gateway readiness: %v", err)
		return
	}

	// Kill the ring owner of the job's key, then submit that exact job:
	// the gateway walks owner-first, so the request must retry onto the
	// survivor while the trace records the failed first attempt.
	req := client.JobRequest{Workload: selfcheckWorkloads[0], Insts: insts}
	_, key, err := server.ResolveConfig(&req, server.Limits{})
	if err != nil {
		fails.failf("failover trace: resolve: %v", err)
		return
	}
	ring := cluster.NewRing(names, 0)
	victim := ring.Owner(key)
	survivor := names[1-victim]
	nodes[victim].kill()

	rid := "selfcheck-failover-trace"
	job, err := gcl.SubmitJob(client.WithRequestID(ctx, rid), &req)
	if err != nil {
		fails.failf("failover trace: submit through degraded mini-cluster: %v", err)
		return
	}
	if job.State != client.StateDone || job.Result == nil {
		fails.failf("failover trace: job finished %q (error %q)", job.State, job.Error)
		return
	}

	// Collate. The node commits its serve span when the response is
	// written, strictly before the gateway's attempt span finishes, and
	// the gateway commits its root before answering the client — so one
	// immediate scrape should already be connected; the short retry loop
	// only absorbs scheduling noise.
	getTree := func() (obs.SpanTree, error) {
		var tree obs.SpanTree
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, gwURL+"/v1/trace/"+rid, nil)
		if err != nil {
			return tree, err
		}
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			return tree, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return tree, fmt.Errorf("GET /v1/trace/%s answered %s", rid, resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(&tree); err != nil {
			return tree, err
		}
		return tree, nil
	}
	var tree obs.SpanTree
	for deadline := time.Now().Add(5 * time.Second); ; time.Sleep(50 * time.Millisecond) {
		tree, err = getTree()
		if err == nil && tree.Connected {
			break
		}
		if time.Now().After(deadline) {
			if err != nil {
				fails.failf("failover trace: collation: %v", err)
			} else {
				fails.failf("failover trace %s never became a connected tree: %d spans, %d roots, services %v",
					rid, tree.SpanCount, len(tree.Roots), tree.Services)
			}
			return
		}
	}

	if len(tree.Roots) != 1 || tree.Roots[0].Service != "tcgate" {
		fails.failf("failover trace: want a single gateway root, got %d roots (first service %q)",
			len(tree.Roots), tree.Roots[0].Service)
		return
	}
	hasService := func(s string) bool {
		for _, svc := range tree.Services {
			if svc == s {
				return true
			}
		}
		return false
	}
	if !hasService("tcgate") || !hasService(survivor) {
		fails.failf("failover trace: services %v, want both tcgate and the surviving node %s", tree.Services, survivor)
	}
	var attempts, failedAttempts, okAttempts int
	var runSeen bool
	var runPhase string
	tree.Walk(func(n *obs.SpanNode) {
		switch n.Name {
		case "attempt":
			attempts++
			if n.Error != "" {
				failedAttempts++
			}
			if n.Attrs["outcome"] == "ok" {
				okAttempts++
			}
		case "run":
			runSeen = true
			runPhase = n.Attrs["phase"]
		}
	})
	if attempts < 2 {
		fails.failf("failover trace: %d attempt spans, want >= 2 (the dead owner plus the survivor)", attempts)
	}
	if failedAttempts == 0 {
		fails.failf("failover trace: no attempt span records the dead owner's failure")
	}
	if okAttempts == 0 {
		fails.failf("failover trace: no attempt span records the successful retry")
	}
	if !runSeen {
		fails.failf("failover trace: the survivor's run span is missing from the collated tree")
	} else if runPhase != "capture" && runPhase != "replay" {
		fails.failf("failover trace: run span phase %q, want capture or replay", runPhase)
	}
}

// checkClusterCDN probes the gateway's /v1/traces proxy: a captured
// workload serves validated bytes, unknown programs 404, malformed
// budgets 400.
func checkClusterCDN(ctx context.Context, gwURL string, insts uint64, fails *checkFailure) {
	w := selfcheckWorkloads[1]
	sha, ok := tracestore.WorkloadHash(w)
	if !ok {
		fails.failf("no content hash for workload %s", w)
		return
	}
	get := func(url string) (int, []byte) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			fails.failf("build CDN request: %v", err)
			return 0, nil
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			fails.failf("CDN GET %s: %v", url, err)
			return 0, nil
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}
	if code, body := get(fmt.Sprintf("%s/v1/traces/%s?budget=%d", gwURL, sha, insts)); code != http.StatusOK {
		fails.failf("gateway trace GET = %d", code)
	} else if err := tracestore.Validate(body, w, insts); err != nil {
		fails.failf("gateway-served trace fails validation: %v", err)
	}
	if code, _ := get(gwURL + "/v1/traces/deadbeefdeadbeef?budget=1000"); code != http.StatusNotFound {
		fails.failf("unknown program via gateway = %d, want 404", code)
	}
	if code, _ := get(fmt.Sprintf("%s/v1/traces/%s?budget=never", gwURL, sha)); code != http.StatusBadRequest {
		fails.failf("malformed budget via gateway = %d, want 400", code)
	}
}

// checkGatewayMetrics scrapes the gateway's aggregated exposition and
// cross-checks it against the nodes' live stores.
func checkGatewayMetrics(ctx context.Context, gwURL string, nodes []*clusterNode, fails *checkFailure) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, gwURL+"/metrics", nil)
	if err != nil {
		fails.failf("build gateway /metrics request: %v", err)
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fails.failf("gateway /metrics: %v", err)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.ExpoContentType {
		fails.failf("gateway /metrics Content-Type %q, want %q", ct, obs.ExpoContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fails.failf("read gateway /metrics: %v", err)
		return
	}
	samples, err := obs.ParseExposition(body)
	if err != nil {
		fails.failf("gateway /metrics is not a valid exposition: %v", err)
		return
	}
	if got := samples["tcgate_nodes_healthy"]; got != float64(len(nodes)) {
		fails.failf("tcgate_nodes_healthy = %v after recovery, want %d", got, len(nodes))
	}
	for name, why := range map[string]string{
		"tcgate_demotions_total":  "the kill was never noticed",
		"tcgate_promotions_total": "the restart was never promoted",
		"tcgate_rehashes_total":   "no request ever re-hashed off a dead owner",
	} {
		if samples[name] == 0 {
			fails.failf("%s is zero — %s", name, why)
		}
	}
	for _, n := range nodes {
		sample := fmt.Sprintf("tcgate_node_tracestore_total{node=%q,outcome=%q}", n.name, "capture")
		got, ok := samples[sample]
		if !ok {
			fails.failf("gateway exposition is missing %s", sample)
			continue
		}
		if want := float64(n.store.Stats().Captures); got != want {
			fails.failf("%s = %v, node's own store reports %v", sample, got, want)
		}
	}
	if samples[`tcgate_jobs_proxied_total{outcome="ok"}`] == 0 {
		fails.failf("gateway proxied-jobs counter is zero after the storm")
	}
}

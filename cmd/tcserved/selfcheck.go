package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"time"

	"tcsim"
	"tcsim/client"
	"tcsim/internal/obs"
	"tcsim/internal/server"
)

// selfcheckWorkloads keeps the check fast while still mixing control
// flow: pointer-chasing, integer-heavy and branchy benchmarks.
var selfcheckWorkloads = []string{"m88ksim", "compress", "li", "go", "ijpeg", "gcc"}

// selfcheckConfigs are the machine variants crossed with the workloads.
// The Workload and Insts fields are filled per case.
var selfcheckConfigs = []client.JobRequest{
	{},                                   // baseline
	{Preset: client.PresetAll},           // paper's combined pipeline
	{Passes: []string{"moves", "place"}}, // explicit partial pipeline
	{Preset: client.PresetAll, FillLatency: 5}, // latency sweep point
}

// checkFailure accumulates assertion failures without stopping the run,
// so one report lists everything wrong.
type checkFailure struct {
	mu   sync.Mutex
	errs []string
}

func (c *checkFailure) failf(format string, args ...any) {
	c.mu.Lock()
	c.errs = append(c.errs, fmt.Sprintf(format, args...))
	c.mu.Unlock()
}

// startDaemon serves an in-process tcserved on an ephemeral loopback
// port and returns its client plus a shutdown function.
func startDaemon(scfg server.Config) (*server.Server, *client.Client, func(ctx context.Context) error, error) {
	srv := server.New(scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	cl := client.New("http://" + ln.Addr().String())
	shutdown := func(ctx context.Context) error {
		if err := httpSrv.Shutdown(ctx); err != nil {
			return err
		}
		return srv.Shutdown(ctx)
	}
	return srv, cl, shutdown, nil
}

// runSelfcheck is the end-to-end load check the CI gate runs: a mixed,
// duplicate-heavy job storm whose every response must be bit-for-bit
// identical to a direct tcsim.Run, a sweep cross-checked against the
// same references, a cache-effectiveness assertion, and a saturation
// phase that must produce 429s rather than unbounded queueing.
func runSelfcheck(stdout, stderr io.Writer, scfg server.Config, jobs int, insts uint64, flightDir string) int {
	t0 := time.Now()
	if jobs < 50 {
		jobs = 50
	}
	var fails checkFailure
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// Phase 1+2 daemon: a roomy queue so the storm exercises dedup and
	// caching, not backpressure.
	scfg.Engine.Queue = 2 * jobs
	srv, cl, shutdown, err := startDaemon(scfg)
	if err != nil {
		fmt.Fprintf(stderr, "tcserved selfcheck: %v\n", err)
		return 1
	}

	if err := cl.Health(ctx); err != nil {
		fmt.Fprintf(stderr, "tcserved selfcheck: health: %v\n", err)
		return 1
	}
	passes, err := cl.Passes(ctx)
	if err != nil || len(passes) == 0 {
		fails.failf("GET /v1/passes: got %d passes, err %v", len(passes), err)
	}

	// Build the unique cases and their direct-run reference results.
	type testCase struct {
		req      client.JobRequest
		key      string
		expected tcsim.Result
	}
	var unique []testCase
	for _, w := range selfcheckWorkloads {
		for _, cfg := range selfcheckConfigs {
			req := cfg
			req.Workload = w
			req.Insts = insts
			dcfg, key, err := server.ResolveConfig(&req, server.Limits{})
			if err != nil {
				fmt.Fprintf(stderr, "tcserved selfcheck: resolve %s: %v\n", w, err)
				return 1
			}
			expected, err := tcsim.Run(dcfg, mustProgram(w))
			if err != nil {
				fmt.Fprintf(stderr, "tcserved selfcheck: direct run %s: %v\n", w, err)
				return 1
			}
			unique = append(unique, testCase{req: req, key: key, expected: expected})
		}
	}

	// The storm: every unique case at least twice (duplicates are the
	// point — they must dedup or hit cache), shuffled deterministically.
	storm := make([]testCase, 0, jobs)
	for len(storm) < jobs {
		storm = append(storm, unique...)
	}
	storm = storm[:jobs]
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(storm), func(i, j int) { storm[i], storm[j] = storm[j], storm[i] })

	// Submit with bounded client concurrency, alternating sync and
	// async+poll so both lifecycles are exercised.
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i, tc := range storm {
		i, tc := i, tc
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var job *client.Job
			var err error
			if i%3 == 0 {
				job, err = cl.SubmitJobAsync(ctx, &tc.req)
				if err == nil {
					job, err = cl.WaitJob(ctx, job.ID, 5*time.Millisecond)
				}
			} else {
				job, err = cl.SubmitJob(ctx, &tc.req)
			}
			if err != nil {
				fails.failf("job %d (%s): %v", i, tc.req.Workload, err)
				return
			}
			if job.State != client.StateDone || job.Result == nil {
				fails.failf("job %d (%s): state %q, error %q", i, tc.req.Workload, job.State, job.Error)
				return
			}
			if job.Key != tc.key {
				fails.failf("job %d: server key %s != client-computed key %s", i, job.Key, tc.key)
			}
			if !reflect.DeepEqual(*job.Result, tc.expected) {
				fails.failf("job %d (%s, key %s): served result differs from direct tcsim.Run (IPC %v vs %v)",
					i, tc.req.Workload, tc.key, job.Result.IPC, tc.expected.IPC)
			}
		}()
	}
	wg.Wait()

	// Sweep phase: cross three workloads with two configs and verify
	// each cell against the same direct references.
	sweepWLs := selfcheckWorkloads[:3]
	sweep, err := cl.Sweep(ctx, &client.SweepRequest{
		Workloads: sweepWLs,
		Configs:   []client.JobRequest{{}, {Preset: client.PresetAll}},
		Insts:     insts,
	})
	if err != nil {
		fails.failf("sweep: %v", err)
		sweep = &client.SweepResponse{}
	} else {
		if sweep.Cells != len(sweepWLs)*2 || len(sweep.Rows) != sweep.Cells {
			fails.failf("sweep: %d cells, %d rows (want %d)", sweep.Cells, len(sweep.Rows), len(sweepWLs)*2)
		}
		byKey := make(map[string]tcsim.Result)
		for _, tc := range unique {
			byKey[tc.key] = tc.expected
		}
		for _, row := range sweep.Rows {
			ref, ok := byKey[row.Key]
			if !ok {
				fails.failf("sweep cell %s: key %s not among the job-phase keys — sweep and job hashing disagree",
					row.Workload, row.Key)
				continue
			}
			if row.IPC != ref.IPC || row.Cycles != ref.Cycles || row.Retired != ref.Retired {
				fails.failf("sweep cell %s/%s: IPC %v cycles %d != direct %v/%d",
					row.Workload, row.Key, row.IPC, row.Cycles, ref.IPC, ref.Cycles)
			}
		}
	}

	// Policy phase: the served registry must match the in-process one,
	// an explicit default policy must hash (and cache) identically to an
	// absent one, and non-default policies must split the cache key while
	// still matching a direct run bit-for-bit.
	polUnique := checkPolicies(ctx, cl, insts, &fails)

	// Cache effectiveness: the storm repeated every config, so hits and
	// joins together must cover jobs-unique, and hits must be nonzero.
	met, err := cl.Metrics(ctx)
	if err != nil {
		fails.failf("metrics: %v", err)
		met = &client.Metrics{}
	}
	if met.CacheHits == 0 {
		fails.failf("cache hit counter is zero after %d submissions of %d unique configs", jobs, len(unique))
	}
	if met.CacheMisses > uint64(len(unique)+polUnique) {
		fails.failf("%d cache misses for %d unique configs: canonical hashing is splitting identical jobs",
			met.CacheMisses, len(unique)+polUnique)
	}
	if met.JobsCompleted < uint64(jobs) {
		fails.failf("jobs_completed %d < submitted %d", met.JobsCompleted, jobs)
	}

	// Observability phase: the Prometheus exposition must parse, agree
	// with the JSON snapshot, stay monotone across scrapes, and request
	// IDs must round-trip through both raw HTTP and the client.
	checkObservability(ctx, cl, met, &fails)

	// Sampled-timing phase: warm-mode and seek-mode sampled jobs must be
	// bit-for-bit a direct run's, and the sampling counters must surface
	// in both metrics views. Runs after the observability phase because
	// its seek job uses a fresh (workload, budget) pair, which would
	// break that phase's exact capture-count assertion.
	samp := checkSampling(ctx, cl, insts, &fails)

	if err := shutdown(ctx); err != nil {
		fails.failf("graceful shutdown: %v", err)
	}

	// Saturation phase: a deliberately tiny daemon (1 worker, 1 queue
	// slot) under a burst of distinct slow jobs must reject with 429 +
	// Retry-After instead of queueing without bound.
	satCfg := scfg
	satCfg.Engine.Workers = 1
	satCfg.Engine.Queue = 1
	_, satCl, satShutdown, err := startDaemon(satCfg)
	if err != nil {
		fmt.Fprintf(stderr, "tcserved selfcheck: saturation daemon: %v\n", err)
		return 1
	}
	slowInsts := insts * 8
	var rejected, retryAfterOK int
	for i := 0; i < 6; i++ {
		req := client.JobRequest{Workload: "m88ksim", Insts: slowInsts + uint64(i)} // distinct keys: no dedup
		if _, err := satCl.SubmitJobAsync(ctx, &req); err != nil {
			var apiErr *client.APIError
			if errors.As(err, &apiErr) && apiErr.Code == "queue_full" && apiErr.Status == http.StatusTooManyRequests {
				rejected++
				if apiErr.RetryAfter() > 0 {
					retryAfterOK++
				}
			} else {
				fails.failf("saturation submit %d: unexpected error %v", i, err)
			}
		}
	}
	if rejected == 0 {
		fails.failf("saturated queue (1 worker + 1 slot, 6 async jobs) produced no 429")
	}
	if rejected > 0 && retryAfterOK == 0 {
		fails.failf("429 responses carried no Retry-After hint")
	}
	// Drain waits for the admitted slow jobs — graceful shutdown under load.
	if err := satShutdown(ctx); err != nil {
		fails.failf("saturation drain: %v", err)
	}

	if len(fails.errs) > 0 {
		fmt.Fprintf(stderr, "tcserved selfcheck: %d failure(s):\n", len(fails.errs))
		for _, e := range fails.errs {
			fmt.Fprintf(stderr, "  - %s\n", e)
		}
		dumpFlights(stderr, flightDir, srv.Flight())
		return 1
	}
	fmt.Fprintf(stdout,
		"tcserved selfcheck ok: %d jobs (%d unique) bit-for-bit identical to direct runs; "+
			"cache hits %d, misses %d, dedup joins %d; sweep %d cells (%d simulated); "+
			"trace store %d captures / %d replays; "+
			"sampling %d windows, %d insts fast-forwarded, %d checkpoint restores; "+
			"%d/6 saturation submissions rejected with 429; %.1fs\n",
		jobs, len(unique), met.CacheHits, met.CacheMisses, met.DedupJoins,
		sweep.Cells, sweep.Simulations,
		met.TraceStore.Captures, met.TraceStore.ReplayHits,
		samp.Windows, samp.InstsFFwd, samp.CheckpointRestores,
		rejected, time.Since(t0).Seconds())
	return 0
}

// checkSampling is the sampled-timing phase: a warm-mode sampled job at
// the shared budget (fast-forward through the gaps) and a seek-mode job
// above tracestore.FullCaptureLimit (checkpoint-log oracle, so seeks
// must restore capture-time checkpoints instead of re-emulating the
// whole gap). Both must match a direct run of the resolved config
// bit-for-bit, and the aggregated sampling counters must agree between
// /metrics.json and the Prometheus exposition. Returns the final
// sampling aggregates for the summary line (zero-valued on failure).
func checkSampling(ctx context.Context, cl *client.Client, insts uint64, fails *checkFailure) client.SamplingMetrics {
	warm := client.JobRequest{Workload: "m88ksim", Insts: insts,
		SamplePeriod: insts / 4, SampleWindow: insts / 20, SampleWarmup: insts / 20}
	// The seek job's budget must exceed the full-capture limit so the
	// daemon serves it from a checkpoint log; its sparse plan keeps the
	// detailed portion tiny while every seek crosses checkpoints.
	seek := client.JobRequest{Workload: "m88ksim", Insts: 5_000_000,
		SamplePeriod: 1_000_000, SampleWindow: 5_000, SampleWarmup: 5_000, SampleSeek: true}

	for _, req := range []client.JobRequest{warm, seek} {
		req := req
		dcfg, key, err := server.ResolveConfig(&req, server.Limits{})
		if err != nil {
			fails.failf("sampling phase: resolve (seek=%v): %v", req.SampleSeek, err)
			return client.SamplingMetrics{}
		}
		expected, err := tcsim.RunWorkload(dcfg, req.Workload)
		if err != nil {
			fails.failf("sampling phase: direct run (seek=%v): %v", req.SampleSeek, err)
			return client.SamplingMetrics{}
		}
		if expected.Sampled == nil || expected.Sampled.Windows == 0 {
			fails.failf("sampling phase: direct run (seek=%v) produced no sampled windows", req.SampleSeek)
			return client.SamplingMetrics{}
		}
		if req.SampleSeek && expected.Sampled.CheckpointRestores == 0 {
			fails.failf("sampling phase: seek-mode run above the full-capture limit restored no checkpoints: %+v",
				expected.Sampled)
		}
		job, err := cl.SubmitJob(ctx, &req)
		if err != nil {
			fails.failf("sampling phase: submit (seek=%v): %v", req.SampleSeek, err)
			return client.SamplingMetrics{}
		}
		if job.Key != key {
			fails.failf("sampling phase: server key %s != client-computed key %s", job.Key, key)
		}
		if job.Result == nil || !reflect.DeepEqual(*job.Result, expected) {
			fails.failf("sampling phase (seek=%v, key %s): served sampled result differs from direct run",
				req.SampleSeek, key)
		}
	}

	met, err := cl.Metrics(ctx)
	if err != nil {
		fails.failf("sampling phase: metrics: %v", err)
		return client.SamplingMetrics{}
	}
	s := met.Sampling
	if s.Windows == 0 || s.InstsFFwd == 0 || s.InstsSkipped == 0 || s.Seeks == 0 || s.CheckpointRestores == 0 {
		fails.failf("sampling aggregates incomplete after warm+seek jobs: %+v", s)
	}

	// The exposition must carry the same counters.
	resp, err := http.Get(cl.Base() + "/metrics")
	if err != nil {
		fails.failf("sampling phase: GET /metrics: %v", err)
		return s
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fails.failf("sampling phase: read /metrics: %v", err)
		return s
	}
	samples, err := obs.ParseExposition(body)
	if err != nil {
		fails.failf("sampling phase: parse /metrics: %v", err)
		return s
	}
	for _, c := range []struct {
		sample string
		want   float64
	}{
		{"tcserved_sampling_windows_total", float64(s.Windows)},
		{`tcserved_sampling_insts_total{mode="ffwd"}`, float64(s.InstsFFwd)},
		{`tcserved_sampling_insts_total{mode="skipped"}`, float64(s.InstsSkipped)},
		{"tcserved_sampling_seeks_total", float64(s.Seeks)},
		{"tcserved_sampling_checkpoint_restores_total", float64(s.CheckpointRestores)},
	} {
		got, ok := samples[c.sample]
		if !ok {
			fails.failf("/metrics is missing sample %s", c.sample)
		} else if got != c.want {
			fails.failf("/metrics %s = %v, but /metrics.json reports %v", c.sample, got, c.want)
		}
	}
	return s
}

// checkPolicies is the replacement-policy phase: GET /v1/policies must
// mirror the registry exactly; "" and the explicit default name must
// resolve to one cache key (the explicit job must therefore hit the
// cache warmed by the storm); and each non-default policy must produce a
// distinct key whose served result is bit-for-bit a direct run's. It
// returns how many fresh unique configs it submitted, so the caller can
// widen its cache-miss bound.
func checkPolicies(ctx context.Context, cl *client.Client, insts uint64, fails *checkFailure) int {
	served, err := cl.Policies(ctx)
	if err != nil {
		fails.failf("GET /v1/policies: %v", err)
	} else {
		reg := tcsim.Policies()
		if len(served) != len(reg) {
			fails.failf("GET /v1/policies returned %d policies, registry has %d", len(served), len(reg))
		} else {
			for i, p := range reg {
				got := served[i]
				if got.Name != p.Name || got.Desc != p.Desc || got.Default != p.Default || got.Oracle != p.Oracle {
					fails.failf("/v1/policies[%d] = %+v, registry has %+v", i, got, p)
				}
			}
		}
	}

	base := client.JobRequest{Workload: "m88ksim", Insts: insts, Preset: client.PresetAll}
	_, defKey, err := server.ResolveConfig(&base, server.Limits{})
	if err != nil {
		fails.failf("policy phase: resolve default config: %v", err)
		return 0
	}

	// Explicit default == implicit default: same key, and the storm
	// already ran this config, so the job must be served from cache.
	explicit := base
	explicit.TCPolicy = tcsim.DefaultPolicy()
	if _, key, err := server.ResolveConfig(&explicit, server.Limits{}); err != nil {
		fails.failf("policy phase: resolve explicit-default config: %v", err)
	} else if key != defKey {
		fails.failf("explicit policy %q hashes to %s, implicit default to %s — canonical resolution split them",
			explicit.TCPolicy, key, defKey)
	}
	if job, err := cl.SubmitJob(ctx, &explicit); err != nil {
		fails.failf("explicit-default policy job: %v", err)
	} else if !job.Cached {
		fails.failf("explicit-default policy job missed the cache although the storm ran the same config (key %s)", job.Key)
	}

	// Non-default policies: distinct keys, bit-for-bit served results.
	fresh := 0
	for _, pol := range []string{"srrip", "belady"} {
		req := base
		req.TCPolicy = pol
		dcfg, key, err := server.ResolveConfig(&req, server.Limits{})
		if err != nil {
			fails.failf("policy %s: resolve: %v", pol, err)
			continue
		}
		if key == defKey {
			fails.failf("policy %s hashes to the default policy's key %s — the policy is not in the canonical config", pol, key)
			continue
		}
		fresh++
		// The oracle policy needs the captured trace stream, so the
		// reference run goes through the workload path like the server's.
		expected, err := tcsim.RunWorkload(dcfg, req.Workload)
		if err != nil {
			fails.failf("policy %s: direct run: %v", pol, err)
			continue
		}
		job, err := cl.SubmitJob(ctx, &req)
		if err != nil {
			fails.failf("policy %s: submit: %v", pol, err)
			continue
		}
		if job.Key != key {
			fails.failf("policy %s: server key %s != client-computed key %s", pol, job.Key, key)
		}
		if job.Result == nil || !reflect.DeepEqual(*job.Result, expected) {
			fails.failf("policy %s (key %s): served result differs from direct run", pol, key)
		}
	}
	return fresh
}

// checkObservability validates the daemon's observability surface:
// GET /metrics serves a parseable Prometheus exposition with the right
// Content-Type whose counters match the JSON snapshot and never move
// backwards between scrapes, histograms are internally coherent (the
// parser enforces bucket monotonicity and +Inf == _count), and the
// X-Request-ID a caller pins round-trips through the response header —
// including onto APIError for failing calls.
func checkObservability(ctx context.Context, cl *client.Client, met *client.Metrics, fails *checkFailure) {
	scrape := func() map[string]float64 {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.Base()+"/metrics", nil)
		if err != nil {
			fails.failf("build /metrics request: %v", err)
			return nil
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			fails.failf("GET /metrics: %v", err)
			return nil
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != obs.ExpoContentType {
			fails.failf("GET /metrics Content-Type %q, want %q", ct, obs.ExpoContentType)
		}
		if resp.Header.Get("X-Request-ID") == "" {
			fails.failf("GET /metrics response carries no X-Request-ID")
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			fails.failf("read /metrics body: %v", err)
			return nil
		}
		samples, err := obs.ParseExposition(body)
		if err != nil {
			fails.failf("/metrics is not a valid Prometheus exposition: %v", err)
			return nil
		}
		return samples
	}

	m1 := scrape()
	if m1 == nil {
		return
	}
	// Exposition and JSON snapshot must be two views of one counter set.
	crossChecks := []struct {
		sample string
		want   float64
	}{
		{`tcserved_jobs_total{event="completed"}`, float64(met.JobsCompleted)},
		{`tcserved_cache_requests_total{result="hit"}`, float64(met.CacheHits)},
		{`tcserved_cache_requests_total{result="miss"}`, float64(met.CacheMisses)},
		{`tcserved_sim_insts_total`, float64(met.SimInsts)},
	}
	for _, c := range crossChecks {
		got, ok := m1[c.sample]
		if !ok {
			fails.failf("/metrics is missing sample %s", c.sample)
		} else if got != c.want {
			fails.failf("/metrics %s = %v, but /metrics.json reports %v", c.sample, got, c.want)
		}
	}
	// The storm executed simulations and finalized segments, so the
	// latency and distribution histograms cannot be empty.
	for _, h := range []string{"tcserved_job_duration_seconds", "tcserved_segment_length_insts",
		"tcserved_queue_wait_seconds", "tcserved_cache_hit_age_seconds"} {
		if m1[h+"_count"] == 0 {
			fails.failf("/metrics histogram %s has zero observations after the job storm", h)
		}
	}

	// Trace-store phase: every server simulation goes through the shared
	// capture-once store, so each (workload, budget) pair must have been
	// captured exactly once and every repeat config served by replay. The
	// direct reference runs bypass the store (tcsim.Run takes a Program),
	// so they must not inflate the capture count.
	ts := met.TraceStore
	if want := uint64(len(selfcheckWorkloads)); ts.Captures != want {
		fails.failf("trace store captured %d streams, want exactly %d (one per workload at the shared budget)",
			ts.Captures, want)
	}
	if ts.ReplayHits < ts.Captures {
		fails.failf("trace store replay hits %d < captures %d: repeat configs are re-emulating instead of replaying",
			ts.ReplayHits, ts.Captures)
	}
	if ts.ResidentTraces != len(selfcheckWorkloads) || ts.Evictions != 0 {
		fails.failf("trace store holds %d traces with %d evictions, want %d resident and none evicted",
			ts.ResidentTraces, ts.Evictions, len(selfcheckWorkloads))
	}
	if ts.Captures > 0 && ts.CaptureSecs <= 0 {
		fails.failf("trace store reports %d captures but %v capture seconds", ts.Captures, ts.CaptureSecs)
	}
	if ts.DiskLoads != 0 || ts.DiskSaves != 0 || ts.DiskRejects != 0 {
		fails.failf("trace store shows disk traffic (loads %d, saves %d, rejects %d) with no -tracedir",
			ts.DiskLoads, ts.DiskSaves, ts.DiskRejects)
	}
	tsChecks := []struct {
		sample string
		want   float64
	}{
		{"tcserved_tracestore_captures_total", float64(ts.Captures)},
		{"tcserved_tracestore_replay_hits_total", float64(ts.ReplayHits)},
		{"tcserved_tracestore_evictions_total", float64(ts.Evictions)},
		{"tcserved_tracestore_resident_traces", float64(ts.ResidentTraces)},
		{`tcserved_tracestore_disk_total{outcome="load"}`, float64(ts.DiskLoads)},
		{`tcserved_tracestore_disk_total{outcome="save"}`, float64(ts.DiskSaves)},
		{`tcserved_tracestore_disk_total{outcome="reject"}`, float64(ts.DiskRejects)},
	}
	for _, c := range tsChecks {
		got, ok := m1[c.sample]
		if !ok {
			fails.failf("/metrics is missing sample %s", c.sample)
		} else if got != c.want {
			fails.failf("/metrics %s = %v, but /metrics.json reports %v", c.sample, got, c.want)
		}
	}

	m2 := scrape()
	if m2 == nil {
		return
	}
	for name, v1 := range m1 {
		if !strings.Contains(name, "_total") && !strings.HasSuffix(name, "_count") &&
			!strings.Contains(name, "_bucket{") {
			continue // gauges may move either way
		}
		if v2, ok := m2[name]; !ok {
			fails.failf("counter %s disappeared between scrapes", name)
		} else if v2 < v1 {
			fails.failf("counter %s moved backwards: %v -> %v", name, v1, v2)
		}
	}

	// Request-ID round-trip, raw: a caller-supplied ID is echoed.
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, cl.Base()+"/healthz", nil)
	req.Header.Set("X-Request-ID", "selfcheck-raw-rid")
	if resp, err := http.DefaultClient.Do(req); err != nil {
		fails.failf("healthz with request ID: %v", err)
	} else {
		resp.Body.Close()
		if got := resp.Header.Get("X-Request-ID"); got != "selfcheck-raw-rid" {
			fails.failf("X-Request-ID not echoed: sent %q, got %q", "selfcheck-raw-rid", got)
		}
	}

	// And through the client: a pinned ID surfaces on the APIError a
	// failing call returns, tying the failure to the daemon's log lines.
	ridCtx := client.WithRequestID(ctx, "selfcheck-client-rid")
	_, err := cl.SubmitJob(ridCtx, &client.JobRequest{Workload: "no-such-workload"})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		fails.failf("invalid-workload submit: %v, want APIError", err)
	} else if apiErr.RequestID != "selfcheck-client-rid" {
		fails.failf("APIError.RequestID %q, want the pinned %q", apiErr.RequestID, "selfcheck-client-rid")
	}
}

// dumpFlights writes each flight recorder to dir, so a failing check
// leaves its recent spans and job events behind as CI artifacts. A
// no-op without a -flight-dir.
func dumpFlights(stderr io.Writer, dir string, recs ...*obs.FlightRecorder) {
	if dir == "" {
		return
	}
	for _, fr := range recs {
		if fr == nil {
			continue
		}
		path, err := fr.DumpToDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "  flight dump %s: %v\n", fr.Service(), err)
			continue
		}
		fmt.Fprintf(stderr, "  flight recorder dumped: %s\n", path)
	}
}

// mustProgram builds a bundled workload or dies; selfcheck workloads
// are a fixed known-good list.
func mustProgram(name string) *tcsim.Program {
	p, err := tcsim.BuildWorkload(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Command tcserved runs the simulation-as-a-service daemon: an
// HTTP/JSON front end over tcsim with a bounded worker pool, a
// config-hash result cache with singleflight deduplication, an async
// job store, sweep fan-out, backpressure, live metrics, and graceful
// drain on SIGTERM.
//
// Usage:
//
//	tcserved -addr :8080
//	tcserved -addr :8080 -workers 8 -queue 32 -job-ttl 5m -pprof
//	tcserved -selfcheck
//
// Endpoints:
//
//	POST /v1/jobs        submit a job (sync; ?async=1 to poll instead)
//	GET  /v1/jobs/{id}   poll an async job
//	POST /v1/sweeps      batch workloads x configs, deduplicated
//	GET  /v1/passes      registered fill-unit optimization passes
//	GET  /healthz        liveness
//	GET  /metrics        expvar-style counter snapshot
//
// -selfcheck starts an in-process daemon, hammers it with a mixed
// duplicate-heavy job load plus a sweep, asserts every served result is
// bit-for-bit identical to a direct tcsim.Run of the same config, that
// the cache deduplicated repeats, and that a saturated queue answers
// 429 — then exits non-zero on any violation.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tcsim/internal/prof"
	"tcsim/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so tests can drive the CLI
// in-process. It returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tcserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address")
		workers    = fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue      = fs.Int("queue", 0, "admitted jobs beyond the running ones (0 = 4*workers, <0 = none)")
		cacheSize  = fs.Int("cache", 4096, "result cache entries")
		jobTTL     = fs.Duration("job-ttl", 10*time.Minute, "how long finished async jobs stay pollable")
		jobTimeout = fs.Duration("job-timeout", 60*time.Second, "default per-job wall-clock cap")
		maxTimeout = fs.Duration("max-job-timeout", 5*time.Minute, "upper bound on requested per-job timeouts")
		maxInsts   = fs.Uint64("max-insts", 50_000_000, "per-job retired-instruction cap (0 = unlimited)")
		drainWait  = fs.Duration("drain", 30*time.Second, "graceful-drain deadline on SIGTERM/SIGINT")
		pprofOn    = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		selfcheck  = fs.Bool("selfcheck", false, "run the end-to-end self check against an in-process daemon and exit")
		scJobs     = fs.Int("selfcheck-jobs", 56, "selfcheck: job submissions (>= 50, duplicates included)")
		scInsts    = fs.Uint64("insts", 50_000, "selfcheck: retired-instruction budget per job")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = fs.String("memprofile", "", "write a heap profile to this file at exit")
		trc        = fs.String("trace", "", "write a runtime execution trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "tcserved: unexpected arguments %q\nrun 'tcserved -h' for usage\n", fs.Args())
		return 2
	}

	stopProf, err := prof.Start(*cpuProf, *memProf, *trc)
	if err != nil {
		fmt.Fprintf(stderr, "tcserved: %v\n", err)
		return 1
	}

	scfg := server.Config{
		Engine: server.EngineConfig{
			Workers:      *workers,
			Queue:        *queue,
			CacheEntries: *cacheSize,
			Limits: server.Limits{
				MaxInsts:       *maxInsts,
				DefaultTimeout: *jobTimeout,
				MaxTimeout:     *maxTimeout,
			},
		},
		JobTTL: *jobTTL,
	}

	code := 0
	if *selfcheck {
		code = runSelfcheck(stdout, stderr, scfg, *scJobs, *scInsts)
	} else {
		code = serve(stdout, stderr, scfg, *addr, *drainWait, *pprofOn)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(stderr, "tcserved: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

// serve runs the daemon until SIGTERM/SIGINT, then drains gracefully:
// the listener stops accepting, in-flight requests and admitted async
// jobs finish (up to the drain deadline), then the process exits.
func serve(stdout, stderr io.Writer, scfg server.Config, addr string, drainWait time.Duration, pprofOn bool) int {
	srv := server.New(scfg)
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if pprofOn {
		prof.AttachPprof(mux)
	}
	httpSrv := &http.Server{Handler: mux}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "tcserved: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "tcserved: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		fmt.Fprintf(stderr, "tcserved: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second signal kills us

	fmt.Fprintf(stdout, "tcserved: signal received, draining (deadline %v)\n", drainWait)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "tcserved: http shutdown: %v\n", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "tcserved: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "tcserved: drained, bye")
	return 0
}

// Command tcserved runs the simulation-as-a-service daemon: an
// HTTP/JSON front end over tcsim with a bounded worker pool, a
// config-hash result cache with singleflight deduplication, an async
// job store, sweep fan-out, backpressure, live metrics, and graceful
// drain on SIGTERM.
//
// Usage:
//
//	tcserved -addr :8080
//	tcserved -addr :8080 -workers 8 -queue 32 -job-ttl 5m -pprof
//	tcserved -selfcheck
//
// Endpoints:
//
//	POST /v1/jobs            submit a job (sync; ?async=1 to poll instead)
//	GET  /v1/jobs/{id}       poll an async job
//	POST /v1/sweeps          batch workloads x configs, deduplicated
//	GET  /v1/passes          registered fill-unit optimization passes
//	GET  /v1/traces/{sha}    content-addressed trace CDN export (also HEAD)
//	GET  /healthz            liveness
//	GET  /healthz/ready      readiness (503 once draining starts)
//	GET  /metrics            Prometheus text-format exposition
//	GET  /metrics.json       the same counters as a JSON snapshot
//	GET  /debug/spans        recent request spans (?trace=<request-id> filters)
//	GET  /debug/flight       flight recorder: recent spans + job-lifecycle events
//	GET  /debug/trace/{id}   merged Chrome trace for a job: spans over cycles
//
// Requests carrying X-Trace-Parent (the gateway sets it) contribute
// their spans to the distributed trace named by the request ID; SIGQUIT
// dumps the flight recorder to -flight-dir without stopping the daemon.
//
// In a cluster (see cmd/tcgate), -cdn points the node at the gateway's
// trace CDN: a capture miss first asks the cluster for the workload's
// content-addressed trace and only emulates if no peer has it.
//
// Every request is logged structurally (log/slog; -log-format, -log-level)
// under an X-Request-ID the response echoes, so client-reported failures
// can be matched to server-side log lines.
//
// -selfcheck starts an in-process daemon, hammers it with a mixed
// duplicate-heavy job load plus a sweep, asserts every served result is
// bit-for-bit identical to a direct tcsim.Run of the same config, that
// the cache deduplicated repeats, that the trace store captured each
// workload's correct-path stream exactly once and replayed it for every
// repeat config, that a saturated queue answers 429, that /metrics
// parses as a valid Prometheus exposition with monotone counters, and
// that request IDs round-trip — then exits non-zero on any violation.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tcsim"
	"tcsim/internal/cluster"
	"tcsim/internal/prof"
	"tcsim/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so tests can drive the CLI
// in-process. It returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tcserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address")
		workers    = fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue      = fs.Int("queue", 0, "admitted jobs beyond the running ones (0 = 4*workers, <0 = none)")
		cacheSize  = fs.Int("cache", 4096, "result cache entries")
		jobTTL     = fs.Duration("job-ttl", 10*time.Minute, "how long finished async jobs stay pollable")
		jobTimeout = fs.Duration("job-timeout", 60*time.Second, "default per-job wall-clock cap")
		maxTimeout = fs.Duration("max-job-timeout", 5*time.Minute, "upper bound on requested per-job timeouts")
		maxInsts   = fs.Uint64("max-insts", 50_000_000, "per-job retired-instruction cap (0 = unlimited)")
		drainWait  = fs.Duration("drain", 30*time.Second, "graceful-drain deadline on SIGTERM/SIGINT")
		pprofOn    = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		selfcheck  = fs.Bool("selfcheck", false, "run the end-to-end self check (single daemon, then a 3-node cluster behind a gateway) and exit")
		scJobs     = fs.Int("selfcheck-jobs", 56, "selfcheck: job submissions (>= 50, duplicates included)")
		scCluster  = fs.Int("selfcheck-cluster-jobs", 2000, "selfcheck: jobs driven through the 3-node cluster phase (>= 2000; 0 skips the phase)")
		scInsts    = fs.Uint64("insts", 50_000, "selfcheck: retired-instruction budget per job")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = fs.String("memprofile", "", "write a heap profile to this file at exit")
		trc        = fs.String("trace", "", "write a runtime execution trace to this file")
		logFormat  = fs.String("log-format", "text", "structured log format: text or json")
		logLevel   = fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
		traceDir   = fs.String("tracedir", "", "directory for persisted workload traces: warm restarts load captures from disk instead of re-emulating (invalid/stale files are rejected and re-captured)")
		cdnURL     = fs.String("cdn", "", "cluster gateway base URL: capture misses fetch the trace from peers through GET {cdn}/v1/traces/{sha} before emulating (fetched bodies are fail-closed validated)")
		flightDir  = fs.String("flight-dir", "", "directory for flight-recorder dumps: SIGQUIT, selfcheck failures, and 5xx responses write the recent-span/event buffer there (\"\" = SIGQUIT dumps to the working directory; automatic dumps off)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "tcserved: unexpected arguments %q\nrun 'tcserved -h' for usage\n", fs.Args())
		return 2
	}
	logger, err := newLogger(stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(stderr, "tcserved: %v\nrun 'tcserved -h' for usage\n", err)
		return 2
	}

	stopProf, err := prof.Start(*cpuProf, *memProf, *trc)
	if err != nil {
		fmt.Fprintf(stderr, "tcserved: %v\n", err)
		return 1
	}

	if *traceDir != "" {
		tcsim.SetTraceDir(*traceDir)
	}
	if *cdnURL != "" {
		tcsim.SetTraceFetcher(cluster.TraceFetcher(*cdnURL, nil))
		logger.Info("trace CDN enabled", "gateway", *cdnURL)
	}
	if *traceDir != "" || *cdnURL != "" {
		tcsim.SetTraceRejectLog(func(file string, err error) {
			logger.Warn("rejected trace, re-capturing live", "source", file, "error", err.Error())
		})
	}

	scfg := server.Config{
		Engine: server.EngineConfig{
			Workers:      *workers,
			Queue:        *queue,
			CacheEntries: *cacheSize,
			Limits: server.Limits{
				MaxInsts:       *maxInsts,
				DefaultTimeout: *jobTimeout,
				MaxTimeout:     *maxTimeout,
			},
		},
		JobTTL:    *jobTTL,
		Logger:    logger,
		FlightDir: *flightDir,
	}

	code := 0
	if *selfcheck {
		code = runSelfcheck(stdout, stderr, scfg, *scJobs, *scInsts, *flightDir)
		if code == 0 && *scCluster > 0 {
			code = runClusterSelfcheck(stdout, stderr, scfg, *scCluster, *scInsts, *flightDir)
		}
	} else {
		code = serve(stdout, stderr, logger, scfg, *addr, *drainWait, *pprofOn, *flightDir)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(stderr, "tcserved: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

// newLogger builds the daemon's structured logger from the -log-format
// and -log-level flags.
func newLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (valid: debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (valid: text, json)", format)
}

// serve runs the daemon until SIGTERM/SIGINT, then drains gracefully:
// the listener stops accepting, in-flight requests and admitted async
// jobs finish (up to the drain deadline), then the process exits.
func serve(stdout, stderr io.Writer, logger *slog.Logger, scfg server.Config, addr string, drainWait time.Duration, pprofOn bool, flightDir string) int {
	srv := server.New(scfg)
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if pprofOn {
		prof.AttachPprof(mux)
	}
	httpSrv := &http.Server{Handler: mux}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logger.Error("listen failed", "addr", addr, "error", err.Error())
		return 1
	}
	logger.Info("listening", "url", "http://"+ln.Addr().String(), "pprof", pprofOn)
	fmt.Fprintf(stdout, "tcserved: listening on http://%s\n", ln.Addr())

	// SIGQUIT dumps the flight recorder without stopping the daemon: a
	// wedged or misbehaving process preserves its recent spans and job
	// events for offline inspection, then keeps serving.
	quitCh := make(chan os.Signal, 1)
	signal.Notify(quitCh, syscall.SIGQUIT)
	defer signal.Stop(quitCh)
	go func() {
		for range quitCh {
			if path, err := srv.Flight().DumpToDir(flightDir); err != nil {
				logger.Error("flight dump failed", "error", err.Error())
			} else {
				logger.Info("flight recorder dumped", "path", path, "trigger", "SIGQUIT")
			}
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		logger.Error("serve failed", "error", err.Error())
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second signal kills us

	// Flip readiness first: load balancers and the cluster gateway stop
	// routing here while the listener still answers in-flight (and
	// already-routed) requests; only then stop accepting connections.
	srv.BeginDrain()
	logger.Info("draining", "deadline", drainWait)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Error("http shutdown", "error", err.Error())
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Error("drain failed", "error", err.Error())
		return 1
	}
	logger.Info("drained")
	return 0
}

// Command tcasm is the TCR toolchain driver: it assembles programs,
// prints disassembly listings, runs programs on the functional emulator,
// and dumps the bundled workloads' listings.
//
// Usage:
//
//	tcasm -in prog.s -listing          # assemble + disassemble
//	tcasm -in prog.s -run -max 100000  # assemble + emulate
//	tcasm -workload m88ksim -listing   # dump a bundled workload
package main

import (
	"flag"
	"fmt"
	"os"

	"tcsim/internal/asm"
	"tcsim/internal/emu"
	"tcsim/internal/workload"
)

func main() {
	var (
		in      = flag.String("in", "", "TCR assembly source file")
		wl      = flag.String("workload", "", "bundled workload to operate on instead of -in")
		listing = flag.Bool("listing", false, "print the disassembly listing")
		run     = flag.Bool("run", false, "execute on the functional emulator")
		maxIns  = flag.Uint64("max", 10_000_000, "emulation step budget")
	)
	flag.Parse()

	var prog *asm.Program
	switch {
	case *in != "" && *wl != "":
		fatalf("pass either -in or -workload, not both")
	case *in != "":
		src, err := os.ReadFile(*in)
		if err != nil {
			fatalf("%v", err)
		}
		prog, err = asm.AssembleText(string(src))
		if err != nil {
			fatalf("%v", err)
		}
	case *wl != "":
		w, ok := workload.ByName(*wl)
		if !ok {
			fatalf("unknown workload %q", *wl)
		}
		prog = w.Build()
	default:
		fatalf("pass -in <file.s> or -workload <name>")
	}

	fmt.Printf("text: %d instructions, data: %d bytes, entry %#x\n",
		len(prog.Text), len(prog.Data), prog.Entry)
	if *listing {
		fmt.Print(prog.Listing())
	}
	if *run {
		m := emu.New(prog)
		steps, err := m.Run(*maxIns)
		if err != nil {
			fatalf("emulation: %v", err)
		}
		fmt.Printf("halted after %d instructions\n", steps)
		if len(m.Output) > 0 {
			fmt.Printf("output: %q\n", m.Output)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tcasm: "+format+"\n", args...)
	os.Exit(1)
}

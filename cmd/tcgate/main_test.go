package main

import (
	"strings"
	"testing"
)

func TestParseNodes(t *testing.T) {
	nodes, err := parseNodes("http://a:1, node-b=http://b:2/,http://c:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct{ name, url string }{
		{"node0", "http://a:1"}, {"node-b", "http://b:2"}, {"node2", "http://c:3"},
	}
	if len(nodes) != len(want) {
		t.Fatalf("parsed %d nodes, want %d", len(nodes), len(want))
	}
	for i, w := range want {
		if nodes[i].Name != w.name || nodes[i].URL != w.url {
			t.Errorf("node %d = %+v, want %+v", i, nodes[i], w)
		}
	}
	for _, bad := range []string{"", "  ", "a,,b", "=http://x", "noscheme", "n=noscheme"} {
		if _, err := parseNodes(bad); err == nil {
			t.Errorf("parseNodes(%q) accepted invalid input", bad)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-listen", ":0"}, &out, &errb); code != 2 {
		t.Fatalf("missing -nodes exited %d, want 2", code)
	}
	if code := run([]string{"-nodes", "http://x", "-log-level", "shout"}, &out, &errb); code != 2 {
		t.Fatalf("bad log level exited %d, want 2", code)
	}
	if code := run([]string{"-nodes", "http://x", "stray"}, &out, &errb); code != 2 {
		t.Fatalf("stray args exited %d, want 2", code)
	}
}

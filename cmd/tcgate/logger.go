package main

import (
	"fmt"
	"io"
	"log/slog"
)

// newLogger builds the gateway's structured logger from the -log-format
// and -log-level flags (same vocabulary as tcserved).
func newLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (valid: debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (valid: text, json)", format)
}

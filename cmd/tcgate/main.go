// Command tcgate fronts a tcserved cluster with a consistent-hash
// sharding gateway: every job routes by its canonical config key onto a
// static ring of backend nodes, sweeps fan out cell by cell across the
// cluster, dead nodes are demoted (jobs re-hash to the next ring
// replica) and promoted back by readiness probes, and the nodes'
// content-addressed trace exports are proxied as a cluster-wide trace
// CDN — a workload's correct-path stream is captured at most once
// across the whole cluster.
//
// The gateway speaks the exact wire schema of one tcserved, so every
// existing client and tool points at it unchanged.
//
// Usage:
//
//	tcgate -listen :9090 -nodes http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080
//	tcgate -listen :9090 -nodes node0=http://a:8080,node1=http://b:8080
//
// Each -nodes entry is either a bare URL (the node is named node<i> by
// list position) or name=URL. NAMES ARE THE SHARDING IDENTITY: keys
// hash onto names, so keep them stable across restarts and address
// changes or the whole keyspace reshuffles.
//
// Endpoints (all single-node routes, plus):
//
//	GET /v1/cluster    per-node health, demotion counts, ring size
//	GET /v1/trace/{id} collated cross-node span tree for one request ID
//	GET /metrics       gateway counters + per-node families ({node=...})
//	GET /debug/spans   the gateway's own recent spans (?trace= filters)
//	GET /debug/flight  flight recorder: recent spans + proxy events
//
// The gateway is where a distributed trace is born: it pins the
// X-Request-ID (minting one when the caller did not), opens a root span
// per request plus one child span per backend attempt — so failover
// walks and Retry-After backoffs are visible retries — and forwards the
// span context via X-Trace-Parent. SIGQUIT dumps the flight recorder
// to -flight-dir without stopping the gateway.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tcsim/internal/cluster"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so tests can drive the CLI
// in-process. It returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tcgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen        = fs.String("listen", "127.0.0.1:9090", "gateway listen address")
		nodesFlag     = fs.String("nodes", "", "comma-separated backends: URL or name=URL (names are the stable sharding identity)")
		replicas      = fs.Int("replicas", 0, "virtual nodes per backend on the hash ring (0 = 128)")
		probeInterval = fs.Duration("probe-interval", 250*time.Millisecond, "readiness probe spacing")
		probeTimeout  = fs.Duration("probe-timeout", 2*time.Second, "per-probe timeout")
		sweepConc     = fs.Int("sweep-concurrency", 0, "in-flight sweep cells across the cluster (0 = 4 per node)")
		drainWait     = fs.Duration("drain", 30*time.Second, "graceful-drain deadline on SIGTERM/SIGINT")
		logFormat     = fs.String("log-format", "text", "structured log format: text or json")
		logLevel      = fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
		flightDir     = fs.String("flight-dir", "", "directory for SIGQUIT flight-recorder dumps (\"\" = working directory)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "tcgate: unexpected arguments %q\nrun 'tcgate -h' for usage\n", fs.Args())
		return 2
	}
	logger, err := newLogger(stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(stderr, "tcgate: %v\nrun 'tcgate -h' for usage\n", err)
		return 2
	}
	nodes, err := parseNodes(*nodesFlag)
	if err != nil {
		fmt.Fprintf(stderr, "tcgate: %v\nrun 'tcgate -h' for usage\n", err)
		return 2
	}

	g, err := cluster.New(cluster.Config{
		Nodes:            nodes,
		Replicas:         *replicas,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		SweepConcurrency: *sweepConc,
		Logger:           logger,
	})
	if err != nil {
		fmt.Fprintf(stderr, "tcgate: %v\n", err)
		return 2
	}
	g.Start()

	httpSrv := &http.Server{Handler: g.Handler()}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Error("listen failed", "addr", *listen, "error", err.Error())
		return 1
	}
	for _, n := range nodes {
		logger.Info("backend", "node", n.Name, "url", n.URL)
	}
	logger.Info("listening", "url", "http://"+ln.Addr().String(), "nodes", len(nodes))
	fmt.Fprintf(stdout, "tcgate: listening on http://%s (%d nodes)\n", ln.Addr(), len(nodes))

	// SIGQUIT dumps the flight recorder without stopping the gateway.
	quitCh := make(chan os.Signal, 1)
	signal.Notify(quitCh, syscall.SIGQUIT)
	defer signal.Stop(quitCh)
	go func() {
		for range quitCh {
			if path, err := g.Flight().DumpToDir(*flightDir); err != nil {
				logger.Error("flight dump failed", "error", err.Error())
			} else {
				logger.Info("flight recorder dumped", "path", path, "trigger", "SIGQUIT")
			}
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		logger.Error("serve failed", "error", err.Error())
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second signal kills us

	// Readiness flips first so upstream LBs stop routing, then in-flight
	// proxied requests drain.
	g.BeginDrain()
	logger.Info("draining", "deadline", *drainWait)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Error("http shutdown", "error", err.Error())
	}
	if err := g.Shutdown(drainCtx); err != nil {
		logger.Error("drain failed", "error", err.Error())
		return 1
	}
	logger.Info("drained")
	return 0
}

// parseNodes turns the -nodes flag into the backend list. Entries are
// "URL" (named node<i> by position) or "name=URL".
func parseNodes(s string) ([]cluster.Node, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-nodes is required (comma-separated backend URLs)")
	}
	var out []cluster.Node
	for i, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("-nodes entry %d is empty", i)
		}
		name, url, found := strings.Cut(entry, "=")
		if !found {
			name, url = fmt.Sprintf("node%d", i), entry
		}
		if name == "" || url == "" || !strings.Contains(url, "://") {
			return nil, fmt.Errorf("-nodes entry %q: want URL or name=URL with a scheme", entry)
		}
		out = append(out, cluster.Node{Name: name, URL: strings.TrimRight(url, "/")})
	}
	return out, nil
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestBadFlagsExitNonZero covers the CLI's validation exit paths: every
// malformed invocation must exit non-zero, print the error to stderr
// (not stdout), and point at -h.
func TestBadFlagsExitNonZero(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of stderr
	}{
		{"unknown pass", []string{"-workload", "m88ksim", "-passes", "bogus"}, "unknown pass"},
		{"illegal order", []string{"-workload", "m88ksim", "-passes", "place,moves"}, "illegal pass order"},
		{"opt and passes", []string{"-workload", "m88ksim", "-opt", "all", "-passes", "moves"}, "not both"},
		{"unknown opt", []string{"-workload", "m88ksim", "-opt", "nosuch"}, "unknown optimization"},
		{"workload and asm", []string{"-workload", "m88ksim", "-asm", "x.s"}, "not both"},
		{"no input", nil, "pass -workload"},
		{"unknown flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code == 0 {
				t.Fatalf("run(%q) = 0, want non-zero", tc.args)
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.want)
			}
			if !strings.Contains(stderr.String(), "usage") && !strings.Contains(stderr.String(), "Usage") {
				t.Errorf("stderr %q carries no usage hint", stderr.String())
			}
			if stdout.Len() != 0 {
				t.Errorf("validation error leaked to stdout: %q", stdout.String())
			}
		})
	}
}

// TestUnknownWorkloadFails covers the runtime (exit 1) path.
func TestUnknownWorkloadFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-workload", "nosuch"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr %q)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "unknown workload") {
		t.Errorf("stderr %q does not name the unknown workload", stderr.String())
	}
}

// TestHappyPath sanity-checks that a tiny run still exits 0 and prints
// statistics to stdout.
func TestHappyPath(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-workload", "m88ksim", "-insts", "5000", "-opt", "all"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, stderr %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "IPC") {
		t.Errorf("stdout %q missing the IPC line", stdout.String())
	}
	for _, listArgs := range [][]string{{"-list"}, {"-list-passes"}} {
		var out, errb bytes.Buffer
		if code := run(listArgs, &out, &errb); code != 0 || out.Len() == 0 {
			t.Errorf("run(%v) = %d with stdout %q", listArgs, code, out.String())
		}
	}
}

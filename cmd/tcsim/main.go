// Command tcsim runs one benchmark (or a TCR assembly file) on one
// machine configuration and prints the run's statistics.
//
// Usage:
//
//	tcsim -workload m88ksim -insts 300000 -opt all
//	tcsim -asm prog.s -opt moves,place
//	tcsim -workload gcc -passes reassoc,moves,scadd,place -time-passes
//	tcsim -list
//	tcsim -list-passes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tcsim"
	"tcsim/internal/prof"
)

func main() {
	var (
		wl       = flag.String("workload", "", "bundled benchmark to run (see -list)")
		asmFile  = flag.String("asm", "", "TCR assembly file to assemble and run")
		insts    = flag.Uint64("insts", 0, "retired-instruction budget (0 = workload default / run to halt)")
		opts     = flag.String("opt", "", "fill-unit optimizations: comma list of moves,reassoc,scadd,place, or 'all'")
		passes   = flag.String("passes", "", "explicit pass pipeline, ordered (e.g. reassoc,moves,scadd,place); overrides -opt; see -list-passes")
		listPass = flag.Bool("list-passes", false, "list registered optimization passes and exit")
		timePass = flag.Bool("time-passes", false, "collect per-pass wall time (adds clock reads to the fill path)")
		fillLat  = flag.Int("fill-latency", 1, "fill unit latency in cycles")
		noTC     = flag.Bool("no-tcache", false, "disable the trace cache (instruction-cache front end only)")
		noPack   = flag.Bool("no-packing", false, "disable trace packing")
		noProm   = flag.Bool("no-promotion", false, "disable branch promotion")
		noInact  = flag.Bool("no-inactive", false, "disable inactive issue")
		clusters = flag.Int("clusters", 4, "execution clusters")
		fus      = flag.Int("fus-per-cluster", 4, "functional units per cluster")
		list     = flag.Bool("list", false, "list bundled workloads and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		trc      = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	if *list {
		for _, n := range tcsim.Workloads() {
			fmt.Println(n)
		}
		return
	}
	if *listPass {
		listPasses()
		return
	}

	stopProf, err := prof.Start(*cpuProf, *memProf, *trc)
	if err != nil {
		fatalf("%v", err)
	}

	cfg := tcsim.DefaultConfig()
	cfg.MaxInsts = *insts
	cfg.FillLatency = *fillLat
	cfg.UseTraceCache = !*noTC
	cfg.TracePacking = !*noPack
	cfg.Promotion = !*noProm
	cfg.InactiveIssue = !*noInact
	cfg.Clusters = *clusters
	cfg.FUsPerCluster = *fus
	cfg.TimePasses = *timePass
	if *passes != "" {
		if *opts != "" {
			fatalf("pass either -opt or -passes, not both")
		}
		cfg.Passes = splitSpec(*passes)
		if err := tcsim.ValidatePassSpec(cfg.Passes); err != nil {
			fatalf("%v", err)
		}
	}
	for _, o := range strings.Split(*opts, ",") {
		switch strings.TrimSpace(o) {
		case "":
		case "all":
			cfg.Opt = tcsim.AllOptions()
		case "moves":
			cfg.Opt.Moves = true
		case "reassoc":
			cfg.Opt.Reassoc = true
		case "scadd":
			cfg.Opt.ScaledAdds = true
		case "place":
			cfg.Opt.Placement = true
		default:
			fatalf("unknown optimization %q", o)
		}
	}

	var res tcsim.Result
	switch {
	case *wl != "" && *asmFile != "":
		fatalf("pass either -workload or -asm, not both")
	case *wl != "":
		res, err = tcsim.RunWorkload(cfg, *wl)
	case *asmFile != "":
		src, rerr := os.ReadFile(*asmFile)
		if rerr != nil {
			fatalf("%v", rerr)
		}
		prog, aerr := tcsim.Assemble(string(src))
		if aerr != nil {
			fatalf("%v", aerr)
		}
		res, err = tcsim.Run(cfg, prog)
	default:
		fatalf("pass -workload <name> or -asm <file> (or -list)")
	}
	if err != nil {
		fatalf("%v", err)
	}
	if err := stopProf(); err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("IPC                 %.4f\n", res.IPC)
	fmt.Printf("cycles              %d\n", res.Cycles)
	fmt.Printf("retired             %d\n", res.Retired)
	fmt.Printf("trace cache hit     %.2f%%\n", 100*res.TraceCacheHitRate)
	fmt.Printf("mispredict rate     %.2f%%\n", 100*res.MispredictRate)
	fmt.Printf("bypass delayed      %.2f%%\n", 100*res.BypassDelayRate)
	fmt.Printf("moves marked        %.2f%%\n", res.MovesPct)
	fmt.Printf("reassociated        %.2f%%\n", res.ReassocPct)
	fmt.Printf("scaled ops          %.2f%%\n", res.ScaledPct)
	fmt.Printf("any transformation  %.2f%%\n", res.OptimizedPct)
	for _, ps := range res.PassStats {
		fmt.Printf("pass %-14s %9d segs  %9d touched  %9d rewritten  %9d edges removed",
			ps.Name, ps.Segments, ps.Touched, ps.Rewritten, ps.EdgesRemoved)
		if *timePass {
			fmt.Printf("  %.3fms", float64(ps.Nanos)/1e6)
		}
		fmt.Println()
	}
	if len(res.Output) > 0 {
		fmt.Printf("program output      %q\n", res.Output)
	}
}

// splitSpec parses a comma-separated pass spec, trimming whitespace and
// dropping empty elements.
func splitSpec(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// listPasses prints the registered pass roster in canonical order.
func listPasses() {
	for _, p := range tcsim.Passes() {
		def := " "
		if p.Default {
			def = "*"
		}
		fmt.Printf("%s %-10s %s\n", def, p.Name, p.Desc)
	}
	fmt.Println("(* = part of the paper's combined configuration; default order:",
		strings.Join(tcsim.DefaultPassSpec(), ","), ")")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tcsim: "+format+"\n", args...)
	os.Exit(1)
}

// Command tcsim runs one benchmark (or a TCR assembly file) on one
// machine configuration and prints the run's statistics.
//
// Usage:
//
//	tcsim -workload m88ksim -insts 300000 -opt all
//	tcsim -workload gcc -budget 50000000 -sample auto
//	tcsim -asm prog.s -opt moves,place
//	tcsim -workload gcc -passes reassoc,moves,scadd,place -time-passes
//	tcsim -list
//	tcsim -list-passes
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tcsim"
	"tcsim/internal/prof"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit so tests can drive the CLI
// in-process. Flag and validation errors print to stderr with a usage
// hint and exit 2; runtime failures exit 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tcsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		wl       = fs.String("workload", "", "bundled benchmark to run (see -list)")
		asmFile  = fs.String("asm", "", "TCR assembly file to assemble and run")
		insts    = fs.Uint64("insts", 0, "retired-instruction budget (0 = workload default / run to halt)")
		budget   = fs.Uint64("budget", 0, "retired-instruction budget for long runs (same as -insts; pair with -sample to keep wall time flat)")
		sample   = fs.String("sample", "", "sampled timing plan: 'auto', or 'period,window,warmup', optionally with ',seek' to skip gaps via checkpoint seek (needs -workload); default off = exact simulation")
		opts     = fs.String("opt", "", "fill-unit optimizations: comma list of moves,reassoc,scadd,place, or 'all'")
		passes   = fs.String("passes", "", "explicit pass pipeline, ordered (e.g. reassoc,moves,scadd,place); overrides -opt; see -list-passes")
		listPass = fs.Bool("list-passes", false, "list registered optimization passes and exit")
		tcPolicy = fs.String("tc-policy", "", "trace-cache replacement policy (default "+tcsim.DefaultPolicy()+"; see -list-policies); 'belady' needs -workload")
		icPolicy = fs.String("ic-policy", "", "L1 instruction-cache replacement policy (default "+tcsim.DefaultPolicy()+")")
		listPol  = fs.Bool("list-policies", false, "list registered cache replacement policies and exit")
		timePass = fs.Bool("time-passes", false, "collect per-pass wall time (adds clock reads to the fill path)")
		fillLat  = fs.Int("fill-latency", 1, "fill unit latency in cycles")
		noTC     = fs.Bool("no-tcache", false, "disable the trace cache (instruction-cache front end only)")
		noPack   = fs.Bool("no-packing", false, "disable trace packing")
		noProm   = fs.Bool("no-promotion", false, "disable branch promotion")
		noInact  = fs.Bool("no-inactive", false, "disable inactive issue")
		clusters = fs.Int("clusters", 4, "execution clusters")
		fus      = fs.Int("fus-per-cluster", 4, "functional units per cluster")
		list     = fs.Bool("list", false, "list bundled workloads and exit")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file at exit")
		trc      = fs.String("trace", "", "write a runtime execution trace to this file")
		timeline = fs.String("timeline", "", "write a cycle-level timeline to this file as Chrome trace-event JSON (open in chrome://tracing or ui.perfetto.dev)")
		tlEvents = fs.Int("timeline-events", 0, "timeline ring-buffer capacity in events (0 = 65536); oldest events drop when full")
		traceDir = fs.String("tracedir", "", "directory for persisted workload traces: captures are saved there and later runs load them instead of re-emulating (invalid/stale files are rejected and re-captured)")
	)
	if err := fs.Parse(args); err != nil {
		return 2 // the FlagSet already printed the error and usage to stderr
	}
	usagef := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "tcsim: "+format+"\n", args...)
		fmt.Fprintln(stderr, "run 'tcsim -h' for usage")
		return 2
	}
	fatalf := func(format string, args ...any) int {
		// Library errors already carry the "tcsim:" prefix; don't double it.
		msg := strings.TrimPrefix(fmt.Sprintf(format, args...), "tcsim: ")
		fmt.Fprintf(stderr, "tcsim: %s\n", msg)
		return 1
	}

	if *list {
		for _, n := range tcsim.Workloads() {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}
	if *listPass {
		listPasses(stdout)
		return 0
	}
	if *listPol {
		listPolicies(stdout)
		return 0
	}

	cfg := tcsim.DefaultConfig()
	cfg.MaxInsts = *insts
	if *budget != 0 {
		if *insts != 0 && *insts != *budget {
			return usagef("pass either -insts or -budget, not both")
		}
		cfg.MaxInsts = *budget
	}
	if *sample != "" {
		plan, err := tcsim.ParseSamplingSpec(*sample, cfg.MaxInsts)
		if err != nil {
			return usagef("%v", err)
		}
		if plan.Seek && *asmFile != "" {
			return usagef("-sample seek needs -workload: checkpoint seek runs over a captured trace, not live -asm emulation")
		}
		cfg.Sampling = plan
	}
	cfg.FillLatency = *fillLat
	cfg.UseTraceCache = !*noTC
	cfg.TracePacking = !*noPack
	cfg.Promotion = !*noProm
	cfg.InactiveIssue = !*noInact
	cfg.Clusters = *clusters
	cfg.FUsPerCluster = *fus
	cfg.TimePasses = *timePass
	cfg.Timeline = *timeline != ""
	cfg.TimelineEvents = *tlEvents
	cfg.TCPolicy = *tcPolicy
	cfg.ICPolicy = *icPolicy
	for _, p := range []string{*tcPolicy, *icPolicy} {
		if err := tcsim.ValidatePolicy(p); err != nil {
			return usagef("%v", err)
		}
	}
	if *passes != "" {
		if *opts != "" {
			return usagef("pass either -opt or -passes, not both")
		}
		cfg.Passes = splitSpec(*passes)
		if err := tcsim.ValidatePassSpec(cfg.Passes); err != nil {
			return usagef("%v", err)
		}
	}
	for _, o := range strings.Split(*opts, ",") {
		switch strings.TrimSpace(o) {
		case "":
		case "all":
			cfg.Opt = tcsim.AllOptions()
		case "moves":
			cfg.Opt.Moves = true
		case "reassoc":
			cfg.Opt.Reassoc = true
		case "scadd":
			cfg.Opt.ScaledAdds = true
		case "place":
			cfg.Opt.Placement = true
		default:
			return usagef("unknown optimization %q (valid: moves,reassoc,scadd,place,all)", o)
		}
	}
	if *traceDir != "" {
		tcsim.SetTraceDir(*traceDir)
		tcsim.SetTraceRejectLog(func(file string, err error) {
			fmt.Fprintf(stderr, "tcsim: ignoring trace file %s: %v (re-capturing live)\n", file, err)
		})
	}
	if *wl != "" && *asmFile != "" {
		return usagef("pass either -workload or -asm, not both")
	}
	if *wl == "" && *asmFile == "" {
		return usagef("pass -workload <name> or -asm <file> (or -list)")
	}

	stopProf, err := prof.Start(*cpuProf, *memProf, *trc)
	if err != nil {
		return fatalf("%v", err)
	}

	var res tcsim.Result
	if *wl != "" {
		res, err = tcsim.RunWorkload(cfg, *wl)
	} else {
		src, rerr := os.ReadFile(*asmFile)
		if rerr != nil {
			return fatalf("%v", rerr)
		}
		prog, aerr := tcsim.Assemble(string(src))
		if aerr != nil {
			return fatalf("%v", aerr)
		}
		res, err = tcsim.Run(cfg, prog)
	}
	if err != nil {
		return fatalf("%v", err)
	}
	if err := stopProf(); err != nil {
		return fatalf("%v", err)
	}
	if *timeline != "" {
		f, cerr := os.Create(*timeline)
		if cerr != nil {
			return fatalf("%v", cerr)
		}
		werr := res.Timeline.WriteChromeTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fatalf("writing timeline: %v", werr)
		}
		fmt.Fprintf(stdout, "timeline            %d events -> %s", len(res.Timeline.Events), *timeline)
		if res.Timeline.Dropped > 0 {
			fmt.Fprintf(stdout, " (%d oldest dropped; raise -timeline-events)", res.Timeline.Dropped)
		}
		fmt.Fprintln(stdout)
	}

	fmt.Fprintf(stdout, "IPC                 %.4f\n", res.IPC)
	if s := res.Sampled; s != nil {
		fmt.Fprintf(stdout, "sampled 95%% CI      [%.4f, %.4f] over %d windows\n", s.CILow, s.CIHigh, s.Windows)
		fmt.Fprintf(stdout, "sampled insts       %d detailed  %d warmup  %d ffwd  %d seek-skipped\n",
			s.InstsDetailed, s.InstsWarmup, s.InstsFFwd, s.InstsSkipped)
		if s.Seeks > 0 {
			fmt.Fprintf(stdout, "checkpoint seeks    %d (%d restores)\n", s.Seeks, s.CheckpointRestores)
		}
	}
	fmt.Fprintf(stdout, "cycles              %d\n", res.Cycles)
	fmt.Fprintf(stdout, "retired             %d\n", res.Retired)
	fmt.Fprintf(stdout, "trace cache hit     %.2f%%\n", 100*res.TraceCacheHitRate)
	fmt.Fprintf(stdout, "mispredict rate     %.2f%%\n", 100*res.MispredictRate)
	fmt.Fprintf(stdout, "bypass delayed      %.2f%%\n", 100*res.BypassDelayRate)
	fmt.Fprintf(stdout, "moves marked        %.2f%%\n", res.MovesPct)
	fmt.Fprintf(stdout, "reassociated        %.2f%%\n", res.ReassocPct)
	fmt.Fprintf(stdout, "scaled ops          %.2f%%\n", res.ScaledPct)
	fmt.Fprintf(stdout, "any transformation  %.2f%%\n", res.OptimizedPct)
	if res.TCBypasses > 0 {
		fmt.Fprintf(stdout, "tc fill bypasses    %d\n", res.TCBypasses)
	}
	for _, row := range res.TraceReuse {
		var hits uint64
		for h, n := range row.Hits {
			hits += uint64(h) * n
		}
		shape := row.Mix
		if row.Loop {
			shape += "+loop"
		}
		fmt.Fprintf(stdout, "tc reuse %-11s %9d lines  %9d hits  %6.2f hits/line\n",
			shape, row.Lines, hits, float64(hits)/float64(row.Lines))
	}
	for _, ps := range res.PassStats {
		fmt.Fprintf(stdout, "pass %-14s %9d segs  %9d touched  %9d rewritten  %9d edges removed",
			ps.Name, ps.Segments, ps.Touched, ps.Rewritten, ps.EdgesRemoved)
		if *timePass {
			fmt.Fprintf(stdout, "  %.3fms", float64(ps.Nanos)/1e6)
		}
		fmt.Fprintln(stdout)
	}
	if len(res.Output) > 0 {
		fmt.Fprintf(stdout, "program output      %q\n", res.Output)
	}
	return 0
}

// splitSpec parses a comma-separated pass spec, trimming whitespace and
// dropping empty elements.
func splitSpec(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// listPolicies prints the replacement-policy registry in canonical
// order.
func listPolicies(w io.Writer) {
	for _, p := range tcsim.Policies() {
		mark := " "
		switch {
		case p.Default:
			mark = "*"
		case p.Oracle:
			mark = "o"
		}
		fmt.Fprintf(w, "%s %-8s %s\n", mark, p.Name, p.Desc)
	}
	fmt.Fprintln(w, "(* = default; o = oracle bound, runs over captured workload traces only)")
}

// listPasses prints the registered pass roster in canonical order.
func listPasses(w io.Writer) {
	for _, p := range tcsim.Passes() {
		def := " "
		if p.Default {
			def = "*"
		}
		fmt.Fprintf(w, "%s %-10s %s\n", def, p.Name, p.Desc)
	}
	fmt.Fprintln(w, "(* = part of the paper's combined configuration; default order:",
		strings.Join(tcsim.DefaultPassSpec(), ","), ")")
}

// Command tcsim runs one benchmark (or a TCR assembly file) on one
// machine configuration and prints the run's statistics.
//
// Usage:
//
//	tcsim -workload m88ksim -insts 300000 -opt all
//	tcsim -asm prog.s -opt moves,place
//	tcsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tcsim"
	"tcsim/internal/prof"
)

func main() {
	var (
		wl       = flag.String("workload", "", "bundled benchmark to run (see -list)")
		asmFile  = flag.String("asm", "", "TCR assembly file to assemble and run")
		insts    = flag.Uint64("insts", 0, "retired-instruction budget (0 = workload default / run to halt)")
		opts     = flag.String("opt", "", "fill-unit optimizations: comma list of moves,reassoc,scadd,place, or 'all'")
		fillLat  = flag.Int("fill-latency", 1, "fill unit latency in cycles")
		noTC     = flag.Bool("no-tcache", false, "disable the trace cache (instruction-cache front end only)")
		noPack   = flag.Bool("no-packing", false, "disable trace packing")
		noProm   = flag.Bool("no-promotion", false, "disable branch promotion")
		noInact  = flag.Bool("no-inactive", false, "disable inactive issue")
		clusters = flag.Int("clusters", 4, "execution clusters")
		fus      = flag.Int("fus-per-cluster", 4, "functional units per cluster")
		list     = flag.Bool("list", false, "list bundled workloads and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		trc      = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	if *list {
		for _, n := range tcsim.Workloads() {
			fmt.Println(n)
		}
		return
	}

	stopProf, err := prof.Start(*cpuProf, *memProf, *trc)
	if err != nil {
		fatalf("%v", err)
	}

	cfg := tcsim.DefaultConfig()
	cfg.MaxInsts = *insts
	cfg.FillLatency = *fillLat
	cfg.UseTraceCache = !*noTC
	cfg.TracePacking = !*noPack
	cfg.Promotion = !*noProm
	cfg.InactiveIssue = !*noInact
	cfg.Clusters = *clusters
	cfg.FUsPerCluster = *fus
	for _, o := range strings.Split(*opts, ",") {
		switch strings.TrimSpace(o) {
		case "":
		case "all":
			cfg.Opt = tcsim.AllOptions()
		case "moves":
			cfg.Opt.Moves = true
		case "reassoc":
			cfg.Opt.Reassoc = true
		case "scadd":
			cfg.Opt.ScaledAdds = true
		case "place":
			cfg.Opt.Placement = true
		default:
			fatalf("unknown optimization %q", o)
		}
	}

	var res tcsim.Result
	switch {
	case *wl != "" && *asmFile != "":
		fatalf("pass either -workload or -asm, not both")
	case *wl != "":
		res, err = tcsim.RunWorkload(cfg, *wl)
	case *asmFile != "":
		src, rerr := os.ReadFile(*asmFile)
		if rerr != nil {
			fatalf("%v", rerr)
		}
		prog, aerr := tcsim.Assemble(string(src))
		if aerr != nil {
			fatalf("%v", aerr)
		}
		res, err = tcsim.Run(cfg, prog)
	default:
		fatalf("pass -workload <name> or -asm <file> (or -list)")
	}
	if err != nil {
		fatalf("%v", err)
	}
	if err := stopProf(); err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("IPC                 %.4f\n", res.IPC)
	fmt.Printf("cycles              %d\n", res.Cycles)
	fmt.Printf("retired             %d\n", res.Retired)
	fmt.Printf("trace cache hit     %.2f%%\n", 100*res.TraceCacheHitRate)
	fmt.Printf("mispredict rate     %.2f%%\n", 100*res.MispredictRate)
	fmt.Printf("bypass delayed      %.2f%%\n", 100*res.BypassDelayRate)
	fmt.Printf("moves marked        %.2f%%\n", res.MovesPct)
	fmt.Printf("reassociated        %.2f%%\n", res.ReassocPct)
	fmt.Printf("scaled ops          %.2f%%\n", res.ScaledPct)
	fmt.Printf("any transformation  %.2f%%\n", res.OptimizedPct)
	if len(res.Output) > 0 {
		fmt.Printf("program output      %q\n", res.Output)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tcsim: "+format+"\n", args...)
	os.Exit(1)
}

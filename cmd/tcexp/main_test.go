package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestBadFlagsExitNonZero covers tcexp's validation exit paths: bad
// experiment ids and bad pass specs must exit non-zero with the error
// on stderr and a usage hint, before any simulation starts.
func TestBadFlagsExitNonZero(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown experiment", []string{"-exp", "fig99"}, "unknown experiment"},
		{"unknown pass", []string{"-exp", "bench", "-passes", "bogus"}, "unknown pass"},
		{"passes on figures", []string{"-exp", "fig3", "-passes", "moves"}, "only applies to -exp bench"},
		{"unknown flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
		{"budget without sampling", []string{"-exp", "bench", "-budget", "1000000"}, "only apply to -exp sampling"},
		{"sample without sampling", []string{"-exp", "fig3", "-sample", "auto"}, "only apply to -exp sampling"},
		{"malformed sample plan", []string{"-exp", "sampling", "-sample", "50000,oops,5000"}, "period,window,warmup"},
		{"short sample plan", []string{"-exp", "sampling", "-sample", "50000,5000"}, "period,window,warmup"},
		{"seek sample plan", []string{"-exp", "sampling", "-sample", "50000,5000,5000,seek"}, "oracle sources"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code == 0 {
				t.Fatalf("run(%q) = 0, want non-zero", tc.args)
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.want)
			}
			if !strings.Contains(stderr.String(), "usage") && !strings.Contains(stderr.String(), "Usage") {
				t.Errorf("stderr %q carries no usage hint", stderr.String())
			}
			if stdout.Len() != 0 {
				t.Errorf("validation error leaked to stdout: %q", stdout.String())
			}
		})
	}
}

// TestListPasses checks the informational path exits 0 on stdout.
func TestListPasses(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list-passes"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, stderr %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "moves") {
		t.Errorf("stdout %q missing pass roster", stdout.String())
	}
}

// Command tcexp regenerates the paper's tables and figures.
//
// Usage:
//
//	tcexp -exp fig8 -insts 200000
//	tcexp -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tcsim"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id: "+strings.Join(tcsim.ExperimentIDs(), ", ")+", or 'all'")
		insts = flag.Uint64("insts", 200_000, "retired-instruction budget per simulation (0 = workload defaults)")
	)
	flag.Parse()

	ids := []string{*exp}
	if *exp == "all" {
		ids = tcsim.ExperimentIDs()
	}
	for _, id := range ids {
		out, err := tcsim.ReproduceFigure(id, *insts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcexp: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}

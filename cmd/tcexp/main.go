// Command tcexp regenerates the paper's tables and figures, or runs the
// performance benchmark sweep.
//
// Usage:
//
//	tcexp -exp fig8 -insts 200000
//	tcexp -exp all
//	tcexp -exp bench -bench-out BENCH_sweep.json
//	tcexp -exp bench -passes reassoc,moves,place
//	tcexp -exp all -cpuprofile cpu.pprof -memprofile mem.pprof
//	tcexp -list-passes
//
// All figure reproductions in one invocation share a memoized runner, so
// sweeps common to several figures (the baseline above all) simulate
// exactly once.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"tcsim"
	"tcsim/internal/prof"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit so tests can drive the CLI
// in-process. Flag and validation errors print to stderr with a usage
// hint and exit 2; runtime failures exit 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tcexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "all", "experiment id: "+strings.Join(tcsim.ExperimentIDs(), ", ")+", '"+tcsim.PoliciesExperimentID+"', '"+tcsim.SamplingExperimentID+"', 'all', or 'bench'")
		insts    = fs.Uint64("insts", 200_000, "retired-instruction budget per simulation (0 = workload defaults); for -exp sampling this sets the validation budget (default 2M)")
		budget   = fs.Uint64("budget", 0, "headline instruction budget for the -exp sampling sweep (0 = 50M); sampled timing makes it near-free")
		sample   = fs.String("sample", "", "sampling plan for -exp sampling: 'period,window,warmup' (default: the per-budget auto plan)")
		benchOut = fs.String("bench-out", "BENCH_sweep.json", "output path for -exp bench")
		passes   = fs.String("passes", "", "pass pipeline for the -exp bench sweep (default: the paper's combined configuration); figures always use their defined variants")
		tcPolicy = fs.String("tc-policy", "", "trace-cache replacement policy for the -exp bench sweep (default "+tcsim.DefaultPolicy()+"; see -list-policies); the policies figure always sweeps all of them")
		icPolicy = fs.String("ic-policy", "", "L1 instruction-cache replacement policy for the -exp bench sweep (default "+tcsim.DefaultPolicy()+")")
		listPass = fs.Bool("list-passes", false, "list registered optimization passes and exit")
		listPol  = fs.Bool("list-policies", false, "list registered cache replacement policies and exit")
		progress = fs.Bool("progress", false, "emit structured per-figure/per-workload progress lines to stderr")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file at exit")
		trc      = fs.String("trace", "", "write a runtime execution trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2 // the FlagSet already printed the error and usage to stderr
	}
	usagef := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "tcexp: "+format+"\n", args...)
		fmt.Fprintln(stderr, "run 'tcexp -h' for usage")
		return 2
	}

	if *listPass {
		for _, p := range tcsim.Passes() {
			def := " "
			if p.Default {
				def = "*"
			}
			fmt.Fprintf(stdout, "%s %-10s %s\n", def, p.Name, p.Desc)
		}
		fmt.Fprintln(stdout, "(* = part of the paper's combined configuration; default order:",
			strings.Join(tcsim.DefaultPassSpec(), ","), ")")
		return 0
	}

	if *listPol {
		listPolicies(stdout)
		return 0
	}

	if !validExperiment(*exp) {
		return usagef("unknown experiment %q (valid: %s, all, bench)",
			*exp, strings.Join(tcsim.ExperimentIDs(), ", "))
	}

	var spec []string
	if *passes != "" {
		for _, p := range strings.Split(*passes, ",") {
			if p = strings.TrimSpace(p); p != "" {
				spec = append(spec, p)
			}
		}
		if err := tcsim.ValidatePassSpec(spec); err != nil {
			return usagef("%v", err)
		}
		if *exp != "bench" {
			return usagef("-passes only applies to -exp bench; figures reproduce their defined variants")
		}
	}

	for _, p := range []string{*tcPolicy, *icPolicy} {
		if err := tcsim.ValidatePolicy(p); err != nil {
			return usagef("%v", err)
		}
	}
	if (*tcPolicy != "" || *icPolicy != "") && *exp != "bench" {
		return usagef("-tc-policy/-ic-policy only apply to -exp bench; the %q figure sweeps every registered policy", tcsim.PoliciesExperimentID)
	}

	var plan tcsim.SamplingConfig
	if (*budget != 0 || *sample != "") && *exp != tcsim.SamplingExperimentID {
		return usagef("-budget/-sample only apply to -exp %s", tcsim.SamplingExperimentID)
	}
	if *sample != "" && *sample != "auto" {
		var perr error
		if plan, perr = tcsim.ParseSamplingSpec(*sample, *budget); perr != nil {
			return usagef("%v", perr)
		}
		if plan.Seek {
			return usagef("-sample seek applies to tcsim runs; the sampling figure picks its oracle sources itself")
		}
	}
	// For -exp sampling the -insts default (200k) is too small to
	// validate against; only an explicit -insts overrides the figure's
	// 2M default.
	valInsts := uint64(0)
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "insts" {
			valInsts = *insts
		}
	})

	stop, err := prof.Start(*cpuProf, *memProf, *trc)
	if err != nil {
		fmt.Fprintf(stderr, "tcexp: %v\n", err)
		return 1
	}

	// -progress logs to stderr so piped/captured stdout stays exactly
	// the figures (or bench table).
	logDst := io.Discard
	if *progress {
		logDst = stderr
	}
	logger := slog.New(slog.NewTextHandler(logDst, nil))

	switch *exp {
	case "bench":
		err = runBench(stdout, logger, *insts, *benchOut, spec, *tcPolicy, *icPolicy)
	case tcsim.SamplingExperimentID:
		err = runSampling(stdout, logger, valInsts, *budget, plan)
	default:
		err = runFigures(stdout, logger, *exp, *insts)
	}
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintf(stderr, "tcexp: %v\n", err)
		return 1
	}
	return 0
}

// validExperiment reports whether id names a reproducible experiment.
// The policy lab is valid standalone but not part of "all" (it is this
// simulator's extension, not a paper figure).
func validExperiment(id string) bool {
	if id == "all" || id == "bench" || id == tcsim.PoliciesExperimentID || id == tcsim.SamplingExperimentID {
		return true
	}
	for _, known := range tcsim.ExperimentIDs() {
		if id == known {
			return true
		}
	}
	return false
}

func runFigures(stdout io.Writer, logger *slog.Logger, exp string, insts uint64) error {
	ids := []string{exp}
	if exp == "all" {
		ids = tcsim.ExperimentIDs()
	}
	suite := tcsim.NewSuite(insts)
	logger.Info("suite start", "experiments", len(ids), "insts", insts)
	t00 := time.Now()
	for _, id := range ids {
		logger.Info("figure start", "id", id, "simulations", suite.Simulations())
		t0 := time.Now()
		out, err := suite.Reproduce(id)
		if err != nil {
			logger.Error("figure failed", "id", id, "error", err.Error())
			return err
		}
		logger.Info("figure done", "id", id,
			"wall", time.Since(t0).Round(time.Millisecond), "simulations", suite.Simulations())
		fmt.Fprintln(stdout, out)
	}
	logger.Info("suite done", "wall", time.Since(t00).Round(time.Millisecond),
		"simulations", suite.Simulations())
	return nil
}

// runSampling reproduces the sampled-timing validation figure:
// sampled vs exact IPC at the validation budget (0 = 2M), then the
// headline sampled sweep at the -budget budget (0 = 50M).
func runSampling(stdout io.Writer, logger *slog.Logger, valInsts, budget uint64, plan tcsim.SamplingConfig) error {
	suite := tcsim.NewSuite(0)
	logger.Info("figure start", "id", tcsim.SamplingExperimentID,
		"validate_insts", valInsts, "headline_insts", budget)
	t0 := time.Now()
	out, err := suite.Sampling(valInsts, budget, plan)
	if err != nil {
		logger.Error("figure failed", "id", tcsim.SamplingExperimentID, "error", err.Error())
		return err
	}
	logger.Info("figure done", "id", tcsim.SamplingExperimentID,
		"wall", time.Since(t0).Round(time.Millisecond), "simulations", suite.Simulations())
	fmt.Fprintln(stdout, out)
	return nil
}

// secs rounds a duration to milliseconds for stable JSON output.
func secs(d time.Duration) float64 {
	return float64(d.Round(time.Millisecond)) / float64(time.Second)
}

// listPolicies prints the replacement-policy registry (-list-policies;
// tcsim has the same flag).
func listPolicies(stdout io.Writer) {
	for _, p := range tcsim.Policies() {
		mark := " "
		switch {
		case p.Default:
			mark = "*"
		case p.Oracle:
			mark = "o"
		}
		fmt.Fprintf(stdout, "%s %-8s %s\n", mark, p.Name, p.Desc)
	}
	fmt.Fprintln(stdout, "(* = default; o = oracle bound, runs over captured workload traces only)")
}

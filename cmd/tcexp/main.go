// Command tcexp regenerates the paper's tables and figures, or runs the
// performance benchmark sweep.
//
// Usage:
//
//	tcexp -exp fig8 -insts 200000
//	tcexp -exp all
//	tcexp -exp bench -bench-out BENCH_sweep.json
//	tcexp -exp bench -passes reassoc,moves,place
//	tcexp -exp all -cpuprofile cpu.pprof -memprofile mem.pprof
//	tcexp -list-passes
//
// All figure reproductions in one invocation share a memoized runner, so
// sweeps common to several figures (the baseline above all) simulate
// exactly once.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tcsim"
	"tcsim/internal/prof"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: "+strings.Join(tcsim.ExperimentIDs(), ", ")+", 'all', or 'bench'")
		insts    = flag.Uint64("insts", 200_000, "retired-instruction budget per simulation (0 = workload defaults)")
		benchOut = flag.String("bench-out", "BENCH_sweep.json", "output path for -exp bench")
		passes   = flag.String("passes", "", "pass pipeline for the -exp bench sweep (default: the paper's combined configuration); figures always use their defined variants")
		listPass = flag.Bool("list-passes", false, "list registered optimization passes and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		trc      = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	if *listPass {
		for _, p := range tcsim.Passes() {
			def := " "
			if p.Default {
				def = "*"
			}
			fmt.Printf("%s %-10s %s\n", def, p.Name, p.Desc)
		}
		fmt.Println("(* = part of the paper's combined configuration; default order:",
			strings.Join(tcsim.DefaultPassSpec(), ","), ")")
		return
	}

	var spec []string
	if *passes != "" {
		for _, p := range strings.Split(*passes, ",") {
			if p = strings.TrimSpace(p); p != "" {
				spec = append(spec, p)
			}
		}
		if err := tcsim.ValidatePassSpec(spec); err != nil {
			fatalf("%v", err)
		}
		if *exp != "bench" {
			fatalf("-passes only applies to -exp bench; figures reproduce their defined variants")
		}
	}

	stop, err := prof.Start(*cpuProf, *memProf, *trc)
	if err != nil {
		fatalf("%v", err)
	}

	if *exp == "bench" {
		err = runBench(*insts, *benchOut, spec)
	} else {
		err = runFigures(*exp, *insts)
	}
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fatalf("%v", err)
	}
}

func runFigures(exp string, insts uint64) error {
	ids := []string{exp}
	if exp == "all" {
		ids = tcsim.ExperimentIDs()
	}
	suite := tcsim.NewSuite(insts)
	for _, id := range ids {
		out, err := suite.Reproduce(id)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tcexp: "+format+"\n", args...)
	os.Exit(1)
}

// secs rounds a duration to milliseconds for stable JSON output.
func secs(d time.Duration) float64 {
	return float64(d.Round(time.Millisecond)) / float64(time.Second)
}

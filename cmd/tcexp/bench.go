package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"runtime"
	"time"

	"tcsim"
	"tcsim/internal/pipeline"
	"tcsim/internal/tracestore"
	"tcsim/internal/workload"
)

// benchReport is the BENCH_sweep.json schema: per-workload simulation
// throughput and allocation rates under the combined configuration, the
// geometric-mean throughput, and per-figure wall time for the full
// reproduction suite (which shares one memoized runner).
type benchReport struct {
	Insts     uint64 `json:"insts_per_workload"`
	GoMaxProc int    `json:"gomaxprocs"`
	// Cluster records the serving topology the numbers were measured
	// under, so figures from a sharded run (cmd/tcgate fronting several
	// tcserved nodes) are never mistaken for single-process ones.
	Cluster  clusterBench `json:"cluster"`
	PassSpec []string     `json:"pass_spec"`
	// TCPolicy/ICPolicy record the replacement policies the sweep ran
	// under ("" on the wire never appears: the default resolves to its
	// registered name, so provenance is always explicit).
	TCPolicy  string  `json:"tc_policy"`
	ICPolicy  string  `json:"ic_policy"`
	TotalSecs float64 `json:"total_wall_secs"`

	Workloads  []workloadBench `json:"workloads"`
	GeomeanIPS float64         `json:"geomean_sim_inst_per_sec"`

	// Passes aggregates the fill unit's per-pass counters across every
	// workload of the sweep, in pipeline run order.
	Passes []tcsim.PassStat `json:"passes"`

	Figures     []figureBench `json:"figures"`
	Simulations uint64        `json:"suite_simulations"`

	// TraceStore summarizes the run's capture-once/replay-many split.
	TraceStore traceStoreBench `json:"trace_store"`

	// Sampling is the sampled-timing provenance block: the plan the
	// sampled columns ran under, the measured functional fast-forward
	// rate, and sampled-vs-exact IPC per workload at the sweep budget.
	Sampling samplingBench `json:"sampling"`
}

// samplingBench records the sweep's sampled-timing provenance so
// sampled figures are never mistaken for exact ones (and vice versa).
type samplingBench struct {
	Period    uint64 `json:"period"`
	WindowLen uint64 `json:"window_len"`
	Warmup    uint64 `json:"warmup"`
	// FFwdInstPerSec is the functional fast-forward rate measured in
	// isolation (compress, 1M-inst captured trace, steady state) — the
	// sampled mode's hot path, to compare against sim_inst_per_sec.
	FFwdInstPerSec float64                 `json:"ffwd_inst_per_sec"`
	Workloads      []samplingWorkloadBench `json:"workloads"`
}

// samplingWorkloadBench is one workload's sampled-vs-exact column pair:
// the exact IPC comes from the sweep's cold run above, the sampled
// estimate from a sampled run at the same budget.
type samplingWorkloadBench struct {
	Name       string  `json:"name"`
	ExactIPC   float64 `json:"exact_ipc"`
	SampledIPC float64 `json:"sampled_ipc"`
	ErrPct     float64 `json:"err_pct"`
	CILow      float64 `json:"ci_low"`
	CIHigh     float64 `json:"ci_high"`
	Windows    int     `json:"windows"`
	WallSecs   float64 `json:"wall_secs"`
}

type workloadBench struct {
	Name        string  `json:"name"`
	Retired     uint64  `json:"retired"`
	Cycles      uint64  `json:"cycles"`
	WallSecs    float64 `json:"wall_secs"`
	InstPerSec  float64 `json:"sim_inst_per_sec"`
	AllocsPerK  float64 `json:"allocs_per_1k_insts"`
	BytesPerK   float64 `json:"bytes_per_1k_insts"`
	CyclePerSec float64 `json:"sim_cycles_per_sec"`

	// Source records where the measured run's oracle stream came from:
	// "capture" (first run of this workload x budget pair, emulated live
	// and recorded into the trace store) or "replay" (served from a
	// resident capture). The primary measurement above is the cold
	// capture run; the Replay* fields re-measure the same simulation
	// served from the store.
	Source           string  `json:"oracle_source"`
	ReplayWallSecs   float64 `json:"replay_wall_secs"`
	ReplayInstPerSec float64 `json:"replay_sim_inst_per_sec"`
	ReplayAllocsPerK float64 `json:"replay_allocs_per_1k_insts"`
}

type figureBench struct {
	ID       string  `json:"id"`
	WallSecs float64 `json:"wall_secs"`
	// Trace-store traffic attributable to this figure: how many of its
	// simulations had to capture a fresh stream vs. replay a resident
	// one. After the workload sweep above, figures at the same budget
	// replay everything.
	Captures   uint64 `json:"captures"`
	ReplayHits uint64 `json:"replay_hits"`
}

// clusterBench is the serving-topology provenance block. The bench
// drives the simulator in-process, so Mode is "local" with one node;
// runs proxied through a gateway record its URL and backend count.
type clusterBench struct {
	Mode    string `json:"mode"` // "local" | "gateway"
	Gateway string `json:"gateway,omitempty"`
	Nodes   int    `json:"nodes"`
}

// traceStoreBench is the report-level trace store summary: the sweep's
// capture-vs-replay split and what the captures cost.
type traceStoreBench struct {
	Captures        uint64  `json:"captures"`
	ReplayHits      uint64  `json:"replay_hits"`
	CaptureWallSecs float64 `json:"capture_wall_secs"`
	ResidentBytes   int64   `json:"resident_bytes"`
	ResidentTraces  int     `json:"resident_traces"`
}

// runBench sweeps every bundled workload under the combined
// configuration (or an explicit -passes spec), measuring wall time and
// allocation deltas, then times each figure of the reproduction suite,
// and writes the JSON report.
func runBench(stdout io.Writer, logger *slog.Logger, insts uint64, outPath string, spec []string, tcPolicy, icPolicy string) error {
	if spec == nil {
		spec = tcsim.DefaultPassSpec()
	}
	rep := benchReport{
		Insts: insts, GoMaxProc: runtime.GOMAXPROCS(0), PassSpec: spec,
		TCPolicy: tcPolicy, ICPolicy: icPolicy,
		Cluster: clusterBench{Mode: "local", Nodes: 1},
	}
	if rep.TCPolicy == "" {
		rep.TCPolicy = tcsim.DefaultPolicy()
	}
	if rep.ICPolicy == "" {
		rep.ICPolicy = tcsim.DefaultPolicy()
	}
	start := time.Now()

	cfg := tcsim.DefaultConfig()
	cfg.Passes = spec
	cfg.TCPolicy = tcPolicy
	cfg.ICPolicy = icPolicy
	cfg.MaxInsts = insts

	var ms0, ms1 runtime.MemStats
	for _, name := range tcsim.Workloads() {
		logger.Info("workload start", "name", name, "insts", insts)
		// Warm run: touches lazily built program images so the measured
		// run is pure simulation.
		warm := cfg
		warm.MaxInsts = 1000
		if _, err := tcsim.RunWorkload(warm, name); err != nil {
			return fmt.Errorf("bench %s: %w", name, err)
		}

		runtime.GC()
		runtime.ReadMemStats(&ms0)
		ts0 := tcsim.TraceStats()
		t0 := time.Now()
		res, err := tcsim.RunWorkload(cfg, name)
		if err != nil {
			return fmt.Errorf("bench %s: %w", name, err)
		}
		wall := time.Since(t0)
		runtime.ReadMemStats(&ms1)

		k := float64(res.Retired) / 1000
		if k == 0 {
			k = 1
		}
		wb := workloadBench{
			Name:        name,
			Retired:     res.Retired,
			Cycles:      res.Cycles,
			WallSecs:    wall.Seconds(),
			InstPerSec:  float64(res.Retired) / wall.Seconds(),
			AllocsPerK:  float64(ms1.Mallocs-ms0.Mallocs) / k,
			BytesPerK:   float64(ms1.TotalAlloc-ms0.TotalAlloc) / k,
			CyclePerSec: float64(res.Cycles) / wall.Seconds(),
			Source:      traceSource(ts0),
		}

		// Replay measurement: the same simulation again, now served from
		// the trace the cold run just captured. The wall-time delta is
		// the per-run cost of re-emulation that the store eliminates.
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		rts0 := tcsim.TraceStats()
		t0 = time.Now()
		rres, err := tcsim.RunWorkload(cfg, name)
		if err != nil {
			return fmt.Errorf("bench %s (replay): %w", name, err)
		}
		rwall := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		if src := traceSource(rts0); src != "replay" {
			return fmt.Errorf("bench %s: second run's oracle source is %q, want replay", name, src)
		}
		if rres.Retired != res.Retired || rres.Cycles != res.Cycles {
			return fmt.Errorf("bench %s: replay run diverged from capture run (%d/%d cycles, %d/%d retired)",
				name, rres.Cycles, res.Cycles, rres.Retired, res.Retired)
		}
		wb.ReplayWallSecs = rwall.Seconds()
		wb.ReplayInstPerSec = float64(rres.Retired) / rwall.Seconds()
		wb.ReplayAllocsPerK = float64(ms1.Mallocs-ms0.Mallocs) / k

		// Sampled column pair: the same machine and budget under the
		// default sampling plan, against the exact run above.
		scfg := cfg
		scfg.Sampling = tcsim.DefaultSamplingFor(insts)
		t0 = time.Now()
		sres, err := tcsim.RunWorkload(scfg, name)
		if err != nil {
			return fmt.Errorf("bench %s (sampled): %w", name, err)
		}
		swall := time.Since(t0)
		sb := samplingWorkloadBench{
			Name:       name,
			ExactIPC:   res.IPC,
			SampledIPC: sres.IPC,
			WallSecs:   swall.Seconds(),
		}
		if s := sres.Sampled; s != nil {
			sb.CILow, sb.CIHigh, sb.Windows = s.CILow, s.CIHigh, s.Windows
		}
		if res.IPC > 0 {
			sb.ErrPct = 100 * (sres.IPC - res.IPC) / res.IPC
		}
		rep.Sampling.Workloads = append(rep.Sampling.Workloads, sb)

		rep.Workloads = append(rep.Workloads, wb)
		logger.Info("workload done", "name", name, "wall", wall.Round(time.Millisecond),
			"retired", res.Retired, "inst_per_sec", int64(wb.InstPerSec),
			"source", wb.Source, "replay_wall", rwall.Round(time.Millisecond))
		for i, ps := range res.PassStats {
			if i >= len(rep.Passes) {
				rep.Passes = append(rep.Passes, tcsim.PassStat{Name: ps.Name})
			}
			agg := &rep.Passes[i]
			agg.Segments += ps.Segments
			agg.Touched += ps.Touched
			agg.Rewritten += ps.Rewritten
			agg.EdgesRemoved += ps.EdgesRemoved
			agg.Nanos += ps.Nanos
		}
		fmt.Fprintf(stdout, "bench %-10s %9.0f inst/s  %7.1f allocs/kinst  %6.2fs %s  %6.2fs replay\n",
			name, wb.InstPerSec, wb.AllocsPerK, wb.WallSecs, wb.Source, wb.ReplayWallSecs)
	}
	if n := len(rep.Workloads); n > 0 {
		sumLog := 0.0
		for _, wb := range rep.Workloads {
			sumLog += math.Log(wb.InstPerSec)
		}
		rep.GeomeanIPS = math.Exp(sumLog / float64(n))
	}

	suite := tcsim.NewSuite(insts)
	for _, id := range tcsim.ExperimentIDs() {
		logger.Info("figure start", "id", id, "simulations", suite.Simulations())
		ts0 := tcsim.TraceStats()
		t0 := time.Now()
		if _, err := suite.Reproduce(id); err != nil {
			return fmt.Errorf("bench %s: %w", id, err)
		}
		ts1 := tcsim.TraceStats()
		fb := figureBench{
			ID:         id,
			WallSecs:   secs(time.Since(t0)),
			Captures:   ts1.Captures - ts0.Captures,
			ReplayHits: ts1.ReplayHits - ts0.ReplayHits,
		}
		rep.Figures = append(rep.Figures, fb)
		logger.Info("figure done", "id", id,
			"wall", time.Since(t0).Round(time.Millisecond), "simulations", suite.Simulations(),
			"captures", fb.Captures, "replay_hits", fb.ReplayHits)
		fmt.Fprintf(stdout, "bench %-10s %6.2fs  %d captures / %d replays\n",
			id, fb.WallSecs, fb.Captures, fb.ReplayHits)
	}
	plan := tcsim.DefaultSamplingFor(insts)
	rep.Sampling.Period, rep.Sampling.WindowLen, rep.Sampling.Warmup = plan.Period, plan.WindowLen, plan.Warmup
	ffwd, err := measureFFwdRate()
	if err != nil {
		return fmt.Errorf("bench ffwd rate: %w", err)
	}
	rep.Sampling.FFwdInstPerSec = ffwd
	fmt.Fprintf(stdout, "bench %-10s %9.0f inst/s (functional fast-forward)\n", "ffwd", ffwd)

	rep.Simulations = suite.Simulations()
	rep.TotalSecs = secs(time.Since(start))
	final := tcsim.TraceStats()
	rep.TraceStore = traceStoreBench{
		Captures:        final.Captures,
		ReplayHits:      final.ReplayHits,
		CaptureWallSecs: float64(final.CaptureNanos) / 1e9,
		ResidentBytes:   final.ResidentBytes,
		ResidentTraces:  final.ResidentTraces,
	}

	b, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(outPath, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "bench: geomean %.0f inst/s over %d workloads, %d suite simulations, "+
		"trace store %d captures (%.2fs) / %d replays, wrote %s\n",
		rep.GeomeanIPS, len(rep.Workloads), rep.Simulations,
		rep.TraceStore.Captures, rep.TraceStore.CaptureWallSecs, rep.TraceStore.ReplayHits, outPath)
	return nil
}

// measureFFwdRate times the functional fast-forward hot path in
// isolation: compress over a freshly captured 1M-instruction trace,
// first half as warm-up (predictor tables grow once per static branch
// PC), second half measured steady-state.
func measureFFwdRate() (float64, error) {
	const budget = 1_000_000
	w, ok := workload.ByName("compress")
	if !ok {
		return 0, fmt.Errorf("workload compress not registered")
	}
	prog := w.Build()
	tr, err := tracestore.Capture("compress", prog, budget)
	if err != nil {
		return 0, err
	}
	cfg := pipeline.DefaultConfig()
	cfg.Oracle = tr.NewReplay()
	cfg.Future = tr
	sim, err := pipeline.New(cfg, prog)
	if err != nil {
		return 0, err
	}
	if err := sim.FastForward(budget / 2); err != nil {
		return 0, err
	}
	t0 := time.Now()
	if err := sim.FastForward(budget); err != nil {
		return 0, err
	}
	return float64(budget/2) / time.Since(t0).Seconds(), nil
}

// traceSource classifies a run that just finished against the trace
// store counters snapshotted right before it: it either captured a
// fresh stream, replayed a resident one, or bypassed the store.
func traceSource(before tcsim.TraceStoreStats) string {
	after := tcsim.TraceStats()
	switch {
	case after.Captures > before.Captures:
		return "capture"
	case after.ReplayHits > before.ReplayHits:
		return "replay"
	}
	return "live"
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"runtime"
	"time"

	"tcsim"
)

// benchReport is the BENCH_sweep.json schema: per-workload simulation
// throughput and allocation rates under the combined configuration, the
// geometric-mean throughput, and per-figure wall time for the full
// reproduction suite (which shares one memoized runner).
type benchReport struct {
	Insts     uint64   `json:"insts_per_workload"`
	GoMaxProc int      `json:"gomaxprocs"`
	PassSpec  []string `json:"pass_spec"`
	TotalSecs float64  `json:"total_wall_secs"`

	Workloads  []workloadBench `json:"workloads"`
	GeomeanIPS float64         `json:"geomean_sim_inst_per_sec"`

	// Passes aggregates the fill unit's per-pass counters across every
	// workload of the sweep, in pipeline run order.
	Passes []tcsim.PassStat `json:"passes"`

	Figures     []figureBench `json:"figures"`
	Simulations uint64        `json:"suite_simulations"`
}

type workloadBench struct {
	Name        string  `json:"name"`
	Retired     uint64  `json:"retired"`
	Cycles      uint64  `json:"cycles"`
	WallSecs    float64 `json:"wall_secs"`
	InstPerSec  float64 `json:"sim_inst_per_sec"`
	AllocsPerK  float64 `json:"allocs_per_1k_insts"`
	BytesPerK   float64 `json:"bytes_per_1k_insts"`
	CyclePerSec float64 `json:"sim_cycles_per_sec"`
}

type figureBench struct {
	ID       string  `json:"id"`
	WallSecs float64 `json:"wall_secs"`
}

// runBench sweeps every bundled workload under the combined
// configuration (or an explicit -passes spec), measuring wall time and
// allocation deltas, then times each figure of the reproduction suite,
// and writes the JSON report.
func runBench(stdout io.Writer, logger *slog.Logger, insts uint64, outPath string, spec []string) error {
	if spec == nil {
		spec = tcsim.DefaultPassSpec()
	}
	rep := benchReport{Insts: insts, GoMaxProc: runtime.GOMAXPROCS(0), PassSpec: spec}
	start := time.Now()

	cfg := tcsim.DefaultConfig()
	cfg.Passes = spec
	cfg.MaxInsts = insts

	var ms0, ms1 runtime.MemStats
	for _, name := range tcsim.Workloads() {
		logger.Info("workload start", "name", name, "insts", insts)
		// Warm run: touches lazily built program images so the measured
		// run is pure simulation.
		warm := cfg
		warm.MaxInsts = 1000
		if _, err := tcsim.RunWorkload(warm, name); err != nil {
			return fmt.Errorf("bench %s: %w", name, err)
		}

		runtime.GC()
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		res, err := tcsim.RunWorkload(cfg, name)
		if err != nil {
			return fmt.Errorf("bench %s: %w", name, err)
		}
		wall := time.Since(t0)
		runtime.ReadMemStats(&ms1)

		k := float64(res.Retired) / 1000
		if k == 0 {
			k = 1
		}
		wb := workloadBench{
			Name:        name,
			Retired:     res.Retired,
			Cycles:      res.Cycles,
			WallSecs:    wall.Seconds(),
			InstPerSec:  float64(res.Retired) / wall.Seconds(),
			AllocsPerK:  float64(ms1.Mallocs-ms0.Mallocs) / k,
			BytesPerK:   float64(ms1.TotalAlloc-ms0.TotalAlloc) / k,
			CyclePerSec: float64(res.Cycles) / wall.Seconds(),
		}
		rep.Workloads = append(rep.Workloads, wb)
		logger.Info("workload done", "name", name, "wall", wall.Round(time.Millisecond),
			"retired", res.Retired, "inst_per_sec", int64(wb.InstPerSec))
		for i, ps := range res.PassStats {
			if i >= len(rep.Passes) {
				rep.Passes = append(rep.Passes, tcsim.PassStat{Name: ps.Name})
			}
			agg := &rep.Passes[i]
			agg.Segments += ps.Segments
			agg.Touched += ps.Touched
			agg.Rewritten += ps.Rewritten
			agg.EdgesRemoved += ps.EdgesRemoved
			agg.Nanos += ps.Nanos
		}
		fmt.Fprintf(stdout, "bench %-10s %9.0f inst/s  %7.1f allocs/kinst  %6.2fs\n",
			name, wb.InstPerSec, wb.AllocsPerK, wb.WallSecs)
	}
	if n := len(rep.Workloads); n > 0 {
		sumLog := 0.0
		for _, wb := range rep.Workloads {
			sumLog += math.Log(wb.InstPerSec)
		}
		rep.GeomeanIPS = math.Exp(sumLog / float64(n))
	}

	suite := tcsim.NewSuite(insts)
	for _, id := range tcsim.ExperimentIDs() {
		logger.Info("figure start", "id", id, "simulations", suite.Simulations())
		t0 := time.Now()
		if _, err := suite.Reproduce(id); err != nil {
			return fmt.Errorf("bench %s: %w", id, err)
		}
		fb := figureBench{ID: id, WallSecs: secs(time.Since(t0))}
		rep.Figures = append(rep.Figures, fb)
		logger.Info("figure done", "id", id,
			"wall", time.Since(t0).Round(time.Millisecond), "simulations", suite.Simulations())
		fmt.Fprintf(stdout, "bench %-10s %6.2fs\n", id, fb.WallSecs)
	}
	rep.Simulations = suite.Simulations()
	rep.TotalSecs = secs(time.Since(start))

	b, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(outPath, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "bench: geomean %.0f inst/s over %d workloads, %d suite simulations, wrote %s\n",
		rep.GeomeanIPS, len(rep.Workloads), rep.Simulations, outPath)
	return nil
}

// Package tcsim is a cycle-level simulator of a trace cache
// microprocessor whose fill unit performs dynamic trace optimizations,
// reproducing Friendly, Patel & Patt, "Putting the Fill Unit to Work:
// Dynamic Optimizations for Trace Cache Microprocessors" (MICRO-31,
// 1998).
//
// The machine: a 16-wide fetch engine with a 2K-entry 4-way trace cache
// (16 instructions / 3 conditional branches per line, branch promotion,
// trace packing, inactive issue), a three-table multiple-branch
// predictor, register renaming with checkpoint repair, and a 16-unit
// execution core arranged as four clusters with a one-cycle cross-cluster
// bypass penalty.
//
// The contribution under study is the fill unit: as instructions retire
// it packs them into multi-block trace segments, marks explicit
// dependency information, and — being off the critical path — optimizes
// each segment before it enters the trace cache:
//
//   - register moves are marked and executed inside rename,
//   - dependent add-immediates are reassociated across basic-block
//     boundaries,
//   - short shift + add/load/store pairs collapse into scaled ops, and
//   - instructions are steered to issue slots so dependent operations
//     share a cluster.
//
// This package is the public face: configure a machine, run one of the
// fifteen bundled benchmark programs (synthetic stand-ins for the
// paper's SPECint95 + UNIX suite) or your own TCR assembly, and read the
// statistics the paper's figures are built from. The experiment harness
// that regenerates every table and figure lives behind ReproduceAll and
// the cmd/tcexp tool.
package tcsim

module tcsim

go 1.22

package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyServer fails the first fail requests with status/code (a JSON
// APIError body plus optional Retry-After header), then serves a queued
// job. Returns the client and a request counter.
func flakyServer(t *testing.T, fail int, status int, code string, retryAfterSecs int) (*Client, *atomic.Int64) {
	t.Helper()
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= int64(fail) {
			if retryAfterSecs > 0 {
				w.Header().Set("Retry-After", "1")
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(ErrorBody{Error: APIError{Code: code, Message: "induced failure", RetryAfterSecs: retryAfterSecs}})
			return
		}
		json.NewEncoder(w).Encode(Job{ID: "j1", State: StateDone, Key: "k"})
	}))
	t.Cleanup(srv.Close)
	return New(srv.URL), &n
}

// fastRetry is a test policy with tiny real sleeps and no jitter.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

// TestRetrySucceedsAfter429: two queue_full rejections, then success —
// the caller sees only the success, and the server saw three requests.
func TestRetrySucceedsAfter429(t *testing.T) {
	cl, n := flakyServer(t, 2, http.StatusTooManyRequests, "queue_full", 0)
	cl.WithRetry(fastRetry(4))
	job, err := cl.SubmitJob(context.Background(), &JobRequest{Workload: "vector_sum"})
	if err != nil {
		t.Fatalf("SubmitJob after retries: %v", err)
	}
	if job.State != StateDone {
		t.Errorf("job state = %q, want done", job.State)
	}
	if got := n.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
}

// TestRetryBudgetExhausted: a server that never recovers; the final
// queue_full error surfaces after exactly MaxAttempts requests.
func TestRetryBudgetExhausted(t *testing.T) {
	cl, n := flakyServer(t, 1000, http.StatusTooManyRequests, "queue_full", 0)
	cl.WithRetry(fastRetry(3))
	_, err := cl.SubmitJob(context.Background(), &JobRequest{Workload: "vector_sum"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != "queue_full" {
		t.Fatalf("err = %v, want queue_full APIError", err)
	}
	if got := n.Load(); got != 3 {
		t.Errorf("server saw %d requests, want MaxAttempts=3", got)
	}
}

// TestNoRetryByDefault: the zero policy preserves one-shot behavior — a
// 429 surfaces straight to the caller.
func TestNoRetryByDefault(t *testing.T) {
	cl, n := flakyServer(t, 1000, http.StatusTooManyRequests, "queue_full", 0)
	_, err := cl.SubmitJob(context.Background(), &JobRequest{Workload: "vector_sum"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want 429 APIError", err)
	}
	if got := n.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (no retries without a policy)", got)
	}
}

// TestNoRetryOnTerminalError: 4xx validation errors are not transient;
// one attempt, straight surface.
func TestNoRetryOnTerminalError(t *testing.T) {
	cl, n := flakyServer(t, 1000, http.StatusBadRequest, "invalid_argument", 0)
	cl.WithRetry(fastRetry(4))
	_, err := cl.SubmitJob(context.Background(), &JobRequest{})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != "invalid_argument" {
		t.Fatalf("err = %v, want invalid_argument APIError", err)
	}
	if got := n.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (invalid_argument is terminal)", got)
	}
}

// TestRetryHonorsRetryAfterClamped: the server suggests a 1s backoff but
// MaxDelay clamps it, so three attempts complete far sooner than the two
// suggested seconds. OnRetry observes the clamped delays.
func TestRetryHonorsRetryAfterClamped(t *testing.T) {
	cl, _ := flakyServer(t, 2, http.StatusServiceUnavailable, "draining", 1)
	var delays []time.Duration
	p := fastRetry(4)
	p.MaxDelay = 10 * time.Millisecond
	p.OnRetry = func(_ int, _ error, d time.Duration) { delays = append(delays, d) }
	cl.WithRetry(p)
	start := time.Now()
	if _, err := cl.SubmitJob(context.Background(), &JobRequest{Workload: "vector_sum"}); err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("retries took %v; MaxDelay should clamp the 1s Retry-After", elapsed)
	}
	if len(delays) != 2 {
		t.Fatalf("OnRetry fired %d times, want 2", len(delays))
	}
	for i, d := range delays {
		if d > 10*time.Millisecond {
			t.Errorf("delay %d = %v, want <= MaxDelay (10ms)", i, d)
		}
	}
}

// TestRetryContextCancelled: a context cancelled during backoff stops
// the loop and surfaces the last real failure, not a retry storm.
func TestRetryContextCancelled(t *testing.T) {
	cl, n := flakyServer(t, 1000, http.StatusTooManyRequests, "queue_full", 0)
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second}
	cl.WithRetry(p)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	_, err := cl.SubmitJob(ctx, &JobRequest{Workload: "vector_sum"})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want the last APIError after cancellation", err)
	}
	if got := n.Load(); got > 3 {
		t.Errorf("server saw %d requests after early cancel, want few", got)
	}
}

// TestRetryTransportError: a connection-refused transport error is
// retryable; the client survives a dead-then-alive server only via its
// attempt budget (here the server stays dead, so the error surfaces
// after the budget).
func TestRetryTransportError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // dead on arrival
	cl := New(srv.URL).WithRetry(fastRetry(3))
	var tries int
	cl.retry.OnRetry = func(attempt int, err error, _ time.Duration) { tries = attempt }
	err := cl.Health(context.Background())
	if err == nil {
		t.Fatal("Health against a closed server succeeded")
	}
	if tries != 2 {
		t.Errorf("observed %d retries, want 2 (3 attempts)", tries)
	}
	if Retryable(err) != true {
		t.Errorf("transport error not classified retryable: %v", err)
	}
}

// TestBackoffGrowsAndClamps: deterministic jitter seam — backoff doubles
// from BaseDelay and clamps at MaxDelay.
func TestBackoffGrowsAndClamps(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 35 * time.Millisecond}
	errTransient := errors.New("transient")
	want := []time.Duration{10, 20, 35, 35} // ms, attempts 1..4
	for i, w := range want {
		if got := p.backoff(i+1, errTransient); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	// Jitter pulls downward only: with rnd=1 the sleep is d*(1-Jitter).
	p.Jitter = 0.5
	p.rnd = func() float64 { return 1 }
	if got := p.backoff(1, errTransient); got != 5*time.Millisecond {
		t.Errorf("jittered backoff = %v, want 5ms", got)
	}
	// A Retry-After hint larger than the schedule wins, within MaxDelay.
	p.Jitter = 0
	hint := &APIError{Status: 429, Code: "queue_full", RetryAfterSecs: 1}
	if got := p.backoff(1, hint); got != 35*time.Millisecond {
		t.Errorf("hinted backoff = %v, want clamp at 35ms", got)
	}
}

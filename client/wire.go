// Package client is the Go client for tcserved, the simulation-as-a-
// service daemon, and the home of the service's wire schema. The server
// (internal/server) imports these types for its request and response
// bodies, so client and daemon marshal the exact same JSON and cannot
// drift apart.
package client

import (
	"fmt"
	"time"

	"tcsim"
)

// Job states reported by the service.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Presets name well-known pass pipelines a JobRequest can select without
// spelling out a spec.
const (
	PresetBaseline = "baseline" // no fill-unit optimization passes
	PresetAll      = "all"      // the paper's combined configuration
)

// JobRequest describes one simulation job: a bundled workload plus the
// machine configuration. The zero value of every config field selects
// the paper's baseline machine (the negative no_* fields exist so that
// "absent" means "default on", mirroring tcsim.DefaultConfig).
type JobRequest struct {
	// Workload is the bundled benchmark name (see tcsim.Workloads).
	Workload string `json:"workload"`
	// Insts bounds retired instructions (0 = the workload's default).
	Insts uint64 `json:"insts,omitempty"`

	// Preset selects a named pipeline ("baseline" or "all"). Mutually
	// exclusive with Passes; empty plus empty Passes means baseline.
	Preset string `json:"preset,omitempty"`
	// Passes is an explicit ordered pass spec (see GET /v1/passes).
	Passes []string `json:"passes,omitempty"`
	// TimePasses collects per-pass wall time into the result. Note that
	// timed results are cached like any other: a cache hit returns the
	// original run's timings.
	TimePasses bool `json:"time_passes,omitempty"`

	FillLatency   int    `json:"fill_latency,omitempty"` // 0 = 1 cycle
	NoTraceCache  bool   `json:"no_trace_cache,omitempty"`
	NoPacking     bool   `json:"no_packing,omitempty"`
	NoPromotion   bool   `json:"no_promotion,omitempty"`
	NoInactive    bool   `json:"no_inactive,omitempty"`
	Clusters      int    `json:"clusters,omitempty"`        // 0 = 4
	FUsPerCluster int    `json:"fus_per_cluster,omitempty"` // 0 = 4
	MaxCycles     uint64 `json:"max_cycles,omitempty"`

	// TCPolicy and ICPolicy select the trace-cache and L1 instruction
	// cache replacement policies by registered name (GET /v1/policies;
	// "" = the default, LRU). The canonical cache key always carries the
	// resolved name, so "" and an explicit "lru" hash identically — and
	// any non-default policy hashes differently.
	TCPolicy string `json:"tc_policy,omitempty"`
	ICPolicy string `json:"ic_policy,omitempty"`

	// SamplePeriod enables SMARTS-style sampled timing (0 = exact
	// simulation): detailed cycle-accurate windows of SampleWindow
	// instructions every SamplePeriod retired instructions, each
	// preceded by a discarded SampleWarmup prefix; the gaps advance by
	// functional fast-forward, or by checkpoint seek with SampleSeek.
	// The result carries the sampled-IPC estimate and its 95% CI in
	// Result.Sampled. The sampling plan is part of the canonical cache
	// key, so sampled and exact runs of one machine never collide.
	SamplePeriod uint64 `json:"sample_period,omitempty"`
	SampleWindow uint64 `json:"sample_window,omitempty"`
	SampleWarmup uint64 `json:"sample_warmup,omitempty"`
	SampleSeek   bool   `json:"sample_seek,omitempty"`

	// TimeoutMS caps the job's wall time (0 = the server default; the
	// server also enforces a maximum). Timeouts do not affect the cache
	// key: the same machine config always hashes the same.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Timeline records a cycle-level event timeline into the result
	// (tcsim.Result.Timeline; bounded server-side, oldest events drop
	// first). Timelines are part of the cache key: a traced and an
	// untraced run of the same config are cached separately, though
	// their statistics are bit-for-bit identical.
	Timeline bool `json:"timeline,omitempty"`
}

// Job is the service's view of one submitted job. Sync submissions
// return it in the terminal state; async submissions return it queued
// and GET /v1/jobs/{id} polls it forward.
type Job struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Key is the canonical config hash the result cache is keyed by;
	// two jobs with the same Key are the same simulation.
	Key string `json:"key"`
	// Cached reports that the result came from the cache or was
	// deduplicated onto a concurrent identical run.
	Cached bool `json:"cached,omitempty"`
	// Result is set once State is "done". It is bit-for-bit the value a
	// direct tcsim.Run of the same config produces.
	Result *tcsim.Result `json:"result,omitempty"`
	Error  string        `json:"error,omitempty"`
	WallMS float64       `json:"wall_ms,omitempty"`
}

// Done reports whether the job reached a terminal state.
func (j *Job) Done() bool { return j.State == StateDone || j.State == StateFailed }

// SweepRequest fans a batch over workloads x configs: every pair becomes
// one simulation cell, run through the experiments runner, which
// deduplicates identical cells (within and across sweeps) by config
// hash. Sweeps return compact per-cell statistics; submit a job for the
// full tcsim.Result of an interesting cell.
type SweepRequest struct {
	// Workloads lists benchmark names (empty = every bundled workload).
	Workloads []string `json:"workloads,omitempty"`
	// Configs are the machine configurations to cross with Workloads.
	// The Workload field inside a sweep config must be empty; an empty
	// Configs list means just the baseline. Per-config Insts overrides
	// the sweep-level Insts.
	Configs []JobRequest `json:"configs,omitempty"`
	// Insts bounds each cell (0 = per-workload defaults).
	Insts uint64 `json:"insts,omitempty"`
}

// SweepRow is one (workload, config) cell's result.
type SweepRow struct {
	Workload       string  `json:"workload"`
	Key            string  `json:"key"`
	IPC            float64 `json:"ipc"`
	Cycles         uint64  `json:"cycles"`
	Retired        uint64  `json:"retired"`
	TCHitRate      float64 `json:"tc_hit_rate"`
	MispredictRate float64 `json:"mispredict_rate"`
}

// SweepResponse aggregates a sweep. Simulations counts the cells that
// actually simulated during this request; Cells minus Simulations were
// memoized or deduplicated onto concurrent identical cells.
type SweepResponse struct {
	Rows        []SweepRow `json:"rows"`
	Cells       int        `json:"cells"`
	Simulations uint64     `json:"simulations"`
	WallMS      float64    `json:"wall_ms"`
}

// Pass is one registered fill-unit optimization pass (GET /v1/passes).
type Pass struct {
	Name    string `json:"name"`
	Desc    string `json:"desc"`
	Default bool   `json:"default"`
}

// Policy is one registered cache replacement policy (GET /v1/policies).
type Policy struct {
	Name    string `json:"name"`
	Desc    string `json:"desc"`
	Default bool   `json:"default"`
	// Oracle marks offline upper-bound policies (future knowledge from
	// the captured trace stream; only valid for workload jobs).
	Oracle bool `json:"oracle,omitempty"`
}

// Metrics is the GET /metrics snapshot: expvar-style monotonic counters
// plus point-in-time gauges.
type Metrics struct {
	UptimeSecs float64 `json:"uptime_secs"`

	JobsAccepted  uint64 `json:"jobs_accepted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsRejected  uint64 `json:"jobs_rejected"` // 429 queue-full rejections
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	DedupJoins    uint64 `json:"dedup_joins"` // joined a concurrent identical run
	// CacheHitRatio is hits / (hits + misses), 0 before any lookup.
	CacheHitRatio float64 `json:"cache_hit_ratio"`

	QueueDepth   int64 `json:"queue_depth"` // admitted, waiting for a worker
	InFlight     int64 `json:"in_flight"`   // simulating right now
	CacheEntries int   `json:"cache_entries"`

	// Simulation throughput: total simulated retired instructions over
	// cumulative busy wall time of completed runs.
	SimInsts       uint64  `json:"sim_insts_total"`
	SimBusySecs    float64 `json:"sim_busy_secs"`
	SimInstsPerSec float64 `json:"sim_insts_per_sec"`

	// Sweep-side counters (the experiments runner shared by /v1/sweeps).
	SweepCells       uint64 `json:"sweep_cells"`
	SweepSimulations uint64 `json:"sweep_simulations"`
	SweepInFlight    int64  `json:"sweep_in_flight"`

	// Passes aggregates per-pass fill-unit counters across every
	// simulation the job engine executed (cache hits excluded), keyed in
	// canonical pass order.
	Passes []tcsim.PassStat `json:"passes,omitempty"`

	// TraceReuse decants trace-cache line reuse by segment shape
	// ("alu", "mem+loop", ...) across executed jobs: line generations
	// retired and the demand hits they took.
	TraceReuse []ReuseClassMetrics `json:"trace_reuse,omitempty"`
	// TCBypasses counts trace-cache fills rejected by the replacement
	// policy (non-zero only under bypass-capable policies like belady).
	TCBypasses uint64 `json:"tc_bypasses,omitempty"`

	// TraceStore reports the process-wide capture-once/replay-many trace
	// store every simulation is served through.
	TraceStore TraceStoreMetrics `json:"trace_store"`

	// Sampling aggregates sampled-timing activity across executed jobs
	// (all zero until a job sets sample_period).
	Sampling SamplingMetrics `json:"sampling"`
}

// SamplingMetrics is the sampled-timing counter snapshot inside
// Metrics: measured windows run, instructions skipped past detailed
// timing (functionally fast-forwarded in warm mode, seeked past in
// seek mode), and checkpoint usage.
type SamplingMetrics struct {
	Windows            uint64 `json:"windows_total"`
	InstsFFwd          uint64 `json:"insts_ffwd_total"`
	InstsSkipped       uint64 `json:"insts_skipped_total"`
	Seeks              uint64 `json:"seeks_total"`
	CheckpointRestores uint64 `json:"checkpoint_restores_total"`
}

// ReuseClassMetrics is one reuse-decanting class aggregate inside
// Metrics: trace-cache line generations whose segments share an
// instruction-mix class and loop-back shape, and the demand hits they
// took before eviction.
type ReuseClassMetrics struct {
	Class string `json:"class"`
	Lines uint64 `json:"lines"`
	Hits  uint64 `json:"hits"`
}

// TraceStoreMetrics is the trace store's counter snapshot inside
// Metrics: how many correct-path streams were captured (by emulation or
// an on-disk load), how many runs replayed a resident stream instead of
// re-emulating, and what the store holds right now.
type TraceStoreMetrics struct {
	Captures       uint64 `json:"captures"`
	ReplayHits     uint64 `json:"replay_hits"`
	Evictions      uint64 `json:"evictions"`
	ResidentBytes  int64  `json:"resident_bytes"`
	ResidentTraces int    `json:"resident_traces"`
	// CaptureSecs is cumulative wall time spent emulating captures.
	CaptureSecs float64 `json:"capture_secs"`
	// On-disk trace directory traffic (all zero unless -tracedir is set).
	DiskLoads   uint64 `json:"disk_loads"`
	DiskSaves   uint64 `json:"disk_saves"`
	DiskRejects uint64 `json:"disk_rejects"`
	// Trace CDN traffic (all zero outside a cluster): serialized traces
	// exported to peers, captures satisfied by a peer fetch, and fetched
	// bodies rejected by fail-closed validation.
	CDNServes  uint64 `json:"cdn_serves,omitempty"`
	CDNFetches uint64 `json:"cdn_fetches,omitempty"`
	CDNRejects uint64 `json:"cdn_rejects,omitempty"`
}

// NodeStatus is one backend's health as the cluster gateway sees it
// (GET /v1/cluster).
type NodeStatus struct {
	// Name is the node's stable ring identity ("node0", ...): consistent
	// hashing keys on it, so a node restarted on a new address keeps its
	// shard.
	Name string `json:"name"`
	URL  string `json:"url"`
	// Healthy reports the last probe or proxy outcome; unhealthy nodes
	// are demoted and their keys re-hash to the next ring replica.
	Healthy bool `json:"healthy"`
	// Demotions counts healthy->unhealthy transitions since gateway start.
	Demotions uint64 `json:"demotions"`
	// LastError is the failure that caused the current demotion (empty
	// when healthy).
	LastError string `json:"last_error,omitempty"`
}

// ClusterStatus is the gateway's cluster view (GET /v1/cluster).
type ClusterStatus struct {
	Nodes []NodeStatus `json:"nodes"`
	// Healthy counts nodes currently routable.
	Healthy int `json:"healthy"`
	// RingPoints is the total number of virtual nodes on the hash ring.
	RingPoints int `json:"ring_points"`
}

// ErrorBody is every non-2xx response's JSON shape.
type ErrorBody struct {
	Error APIError `json:"error"`
}

// APIError is a structured service error. It implements error, so the
// client returns it directly.
type APIError struct {
	// Status is the HTTP status code (not serialized; filled by the
	// client from the response).
	Status int `json:"-"`
	// RequestID is the X-Request-ID the failing exchange carried (not
	// serialized; filled by the client from the response header). Quote
	// it when reporting a server-side failure: the daemon logs every
	// request under this ID.
	RequestID string `json:"-"`
	// Code is a stable machine-readable identifier: "invalid_argument",
	// "not_found", "queue_full", "draining", "timeout", "canceled",
	// "internal" — plus, from a cluster gateway, "bad_gateway" (no
	// healthy backend could serve the request).
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterSecs accompanies "queue_full" and "draining": how long
	// the client should back off (also sent as a Retry-After header).
	RetryAfterSecs int `json:"retry_after_secs,omitempty"`
}

func (e *APIError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("tcserved: %s (%d %s)", e.Message, e.Status, e.Code)
	}
	return fmt.Sprintf("tcserved: %s (%s)", e.Message, e.Code)
}

// RetryAfter returns the suggested backoff as a duration (0 if none).
func (e *APIError) RetryAfter() time.Duration {
	return time.Duration(e.RetryAfterSecs) * time.Second
}

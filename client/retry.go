package client

import (
	"context"
	"errors"
	"math/rand/v2"
	"net/http"
	"time"
)

// RetryPolicy makes a Client retry transient failures — transport
// errors, 429 queue_full, 503 draining/not_ready, and gateway 502/504 —
// with exponential backoff, full jitter, and `Retry-After` honoring.
// Job and sweep submissions are idempotent by canonical config key (a
// retried POST lands on the result cache or joins the in-flight run),
// so replaying them is always safe.
//
// The zero policy disables retries (one attempt), preserving the
// classic "a 429 surfaces straight to the caller" behavior; opt in with
// Client.WithRetry(DefaultRetryPolicy()).
type RetryPolicy struct {
	// MaxAttempts bounds total attempts including the first (<= 1 means
	// no retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: attempt n sleeps
	// ~BaseDelay * 2^(n-1) (0 = 50ms).
	BaseDelay time.Duration
	// MaxDelay caps every sleep, including a server-suggested
	// Retry-After (0 = 2s). The cap keeps a hostile or confused server
	// from parking the client.
	MaxDelay time.Duration
	// Jitter spreads each sleep uniformly over [d*(1-Jitter), d], keeping
	// a thundering herd from re-synchronizing on the daemon (0 = no
	// jitter; clamped to [0, 1]).
	Jitter float64
	// OnRetry, when non-nil, observes each scheduled retry: the attempt
	// that just failed (1-based), its error, and the sleep about to be
	// taken. Wire a logger here.
	OnRetry func(attempt int, err error, delay time.Duration)

	// rnd substitutes the jitter source in tests (nil = math/rand).
	rnd func() float64
}

// DefaultRetryPolicy is a sane interactive default: 4 attempts, 50ms
// base, 2s cap, 25% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.25}
}

// WithRetry installs a retry policy on the client and returns the
// receiver for chaining. The zero policy disables retries.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	c.retry = p
	return c
}

// Retryable reports whether an error is worth retrying: transport
// failures (the daemon may be restarting, the gateway may re-route) and
// the load-shedding statuses 429, 502, 503, 504. Context cancellation
// and every other API error (validation, not-found, simulation failure)
// are terminal.
func Retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.Status {
		case http.StatusTooManyRequests, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	// Anything else at this layer is a transport-level failure.
	return true
}

// backoff computes the sleep before retrying after the attempt-th
// failure (1-based): exponential from BaseDelay, overridden by a larger
// server Retry-After hint, capped at MaxDelay, then jittered downward.
func (p RetryPolicy) backoff(attempt int, err error) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	d := base << (attempt - 1)
	if d <= 0 || d > maxd { // shift overflow or past the cap
		d = maxd
	}
	var ae *APIError
	if errors.As(err, &ae) {
		if ra := ae.RetryAfter(); ra > d {
			d = ra
		}
	}
	if d > maxd {
		d = maxd
	}
	j := p.Jitter
	if j < 0 {
		j = 0
	} else if j > 1 {
		j = 1
	}
	if j > 0 {
		r := rand.Float64
		if p.rnd != nil {
			r = p.rnd
		}
		d = time.Duration(float64(d) * (1 - j*r()))
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// ridServer records the X-Request-ID of each incoming request and
// serves a canned handler.
func ridServer(t *testing.T, handler http.HandlerFunc) (*Client, *[]string) {
	t.Helper()
	var seen []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = append(seen, r.Header.Get("X-Request-ID"))
		handler(w, r)
	}))
	t.Cleanup(srv.Close)
	return New(srv.URL), &seen
}

func okHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
}

// TestRequestIDPinned: WithRequestID pins the outgoing header verbatim
// across every call made under that context.
func TestRequestIDPinned(t *testing.T) {
	cl, seen := ridServer(t, okHealth)
	ctx := WithRequestID(context.Background(), "pinned-rid-1")
	if err := cl.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if err := cl.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if len(*seen) != 2 || (*seen)[0] != "pinned-rid-1" || (*seen)[1] != "pinned-rid-1" {
		t.Errorf("server saw request IDs %q, want pinned-rid-1 twice", *seen)
	}
}

// TestRequestIDGenerated: without a pinned ID, every call carries a
// fresh non-empty ID.
func TestRequestIDGenerated(t *testing.T) {
	cl, seen := ridServer(t, okHealth)
	ctx := context.Background()
	if err := cl.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if err := cl.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if len(*seen) != 2 {
		t.Fatalf("server saw %d requests, want 2", len(*seen))
	}
	for i, rid := range *seen {
		if rid == "" {
			t.Errorf("request %d carried no X-Request-ID", i)
		}
	}
	if (*seen)[0] == (*seen)[1] {
		t.Errorf("auto-generated IDs repeated: %q", (*seen)[0])
	}
}

// TestAPIErrorCarriesRequestID: a structured error response fills
// APIError.RequestID from the response header so callers can correlate
// failures with daemon logs.
func TestAPIErrorCarriesRequestID(t *testing.T) {
	cl, _ := ridServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-ID", r.Header.Get("X-Request-ID"))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":{"code":"invalid_argument","message":"bad workload"}}`))
	})
	ctx := WithRequestID(context.Background(), "err-rid-7")
	_, err := cl.SubmitJob(ctx, &JobRequest{Workload: "nope"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v is not an *APIError", err)
	}
	if apiErr.Code != "invalid_argument" || apiErr.Status != http.StatusBadRequest {
		t.Errorf("APIError = %+v, want invalid_argument/400", apiErr)
	}
	if apiErr.RequestID != "err-rid-7" {
		t.Errorf("APIError.RequestID = %q, want err-rid-7", apiErr.RequestID)
	}
}

// TestAPIErrorRequestIDOnUnstructuredError: even a non-JSON error body
// yields an error annotated with the exchange's request ID.
func TestAPIErrorRequestIDOnUnstructuredError(t *testing.T) {
	cl, _ := ridServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-ID", r.Header.Get("X-Request-ID"))
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	err := cl.Health(WithRequestID(context.Background(), "raw-rid-9"))
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v is not an *APIError", err)
	}
	if apiErr.RequestID != "raw-rid-9" {
		t.Errorf("APIError.RequestID = %q, want raw-rid-9", apiErr.RequestID)
	}
}

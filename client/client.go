package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// reqIDHeader correlates each exchange with the daemon's log lines.
const reqIDHeader = "X-Request-ID"

// traceParentHeader carries span context to the daemon: the request ID
// (the trace) and the caller's span ID the daemon's spans should parent
// under, as "<trace-id>:<span-id>".
const traceParentHeader = "X-Trace-Parent"

type ctxKey int

const (
	reqIDKey ctxKey = iota
	spanParentKey
)

// WithRequestID returns a context that makes every client call carry id
// as its X-Request-ID, correlating the exchange with the daemon's
// structured log. Without it the client generates a fresh random ID per
// request. The ID the exchange actually used is surfaced on APIError
// when a call fails.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey, id)
}

// WithSpanParent returns a context that makes every client call carry
// an X-Trace-Parent header naming spanID as the caller's span, so the
// daemon's spans nest under it in a collated trace. The trace half of
// the header is the request ID, so this composes with WithRequestID.
// An empty spanID returns ctx unchanged.
func WithSpanParent(ctx context.Context, spanID string) context.Context {
	if spanID == "" {
		return ctx
	}
	return context.WithValue(ctx, spanParentKey, spanID)
}

// spanParentFrom returns the caller-pinned parent span ID, if any.
func spanParentFrom(ctx context.Context) string {
	id, _ := ctx.Value(spanParentKey).(string)
	return id
}

// requestIDFrom returns the caller-pinned request ID, or a fresh random
// one.
func requestIDFrom(ctx context.Context) string {
	if id, ok := ctx.Value(reqIDKey).(string); ok && id != "" {
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// No entropy: send none and let the daemon assign one.
		return ""
	}
	return hex.EncodeToString(b[:])
}

// Client talks to a tcserved daemon — or to a tcgate cluster gateway,
// which speaks the identical wire schema.
type Client struct {
	base  string
	http  *http.Client
	retry RetryPolicy
}

// New returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8080"). A trailing slash is trimmed.
func New(base string) *Client {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{base: base, http: &http.Client{}}
}

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles) and returns the receiver for chaining.
func (c *Client) WithHTTPClient(h *http.Client) *Client {
	c.http = h
	return c
}

// Base returns the daemon base URL the client talks to.
func (c *Client) Base() string { return c.base }

// SubmitJob runs one job synchronously: the call blocks until the
// simulation finishes and returns the terminal Job. A full queue
// surfaces as an *APIError with Code "queue_full"; inspect RetryAfter
// for the suggested backoff.
func (c *Client) SubmitJob(ctx context.Context, req *JobRequest) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// SubmitJobAsync enqueues a job and returns immediately with its ID;
// poll with GetJob or WaitJob.
func (c *Client) SubmitJobAsync(ctx context.Context, req *JobRequest) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs?async=1", req, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// GetJob fetches a job's current state.
func (c *Client) GetJob(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// WaitJob polls a job until it reaches a terminal state or ctx expires.
// poll <= 0 selects a 20ms interval.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*Job, error) {
	if poll <= 0 {
		poll = 20 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		job, err := c.GetJob(ctx, id)
		if err != nil {
			return nil, err
		}
		if job.Done() {
			return job, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return job, ctx.Err()
		}
	}
}

// Sweep runs a batch of (workload, config) cells and returns the
// aggregated per-cell statistics.
func (c *Client) Sweep(ctx context.Context, req *SweepRequest) (*SweepResponse, error) {
	var resp SweepResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sweeps", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Passes lists the registered fill-unit optimization passes.
func (c *Client) Passes(ctx context.Context) ([]Pass, error) {
	var ps []Pass
	if err := c.do(ctx, http.MethodGet, "/v1/passes", nil, &ps); err != nil {
		return nil, err
	}
	return ps, nil
}

// Policies lists the registered cache replacement policies.
func (c *Client) Policies(ctx context.Context) ([]Policy, error) {
	var ps []Policy
	if err := c.do(ctx, http.MethodGet, "/v1/policies", nil, &ps); err != nil {
		return nil, err
	}
	return ps, nil
}

// Metrics fetches the daemon's counter snapshot (GET /metrics.json —
// GET /metrics serves the same counters in the Prometheus text format).
func (c *Client) Metrics(ctx context.Context) (*Metrics, error) {
	var m Metrics
	if err := c.do(ctx, http.MethodGet, "/metrics.json", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Health checks /healthz (liveness); nil means the process is up. A
// draining daemon is still live — use Ready to ask whether it should
// receive new work.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Ready checks /healthz/ready (readiness); nil means the daemon accepts
// new work. During graceful drain readiness flips to 503 ("draining")
// while in-flight jobs finish, so balancers and the cluster gateway stop
// routing before the listener closes.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz/ready", nil, nil)
}

// Cluster fetches a gateway's per-node view (GET /v1/cluster). Against a
// plain single-node daemon it returns a not_found *APIError.
func (c *Client) Cluster(ctx context.Context) (*ClusterStatus, error) {
	var cs ClusterStatus
	if err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &cs); err != nil {
		return nil, err
	}
	return &cs, nil
}

// do issues one JSON exchange, retrying per the client's RetryPolicy:
// transient failures (transport errors, 429/502/503/504) back off with
// jittered exponential delays honoring Retry-After, until the policy's
// attempt budget or the context runs out. The zero policy means exactly
// one attempt.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 1; ; attempt++ {
		err := c.doOnce(ctx, method, path, in, out)
		if err == nil || attempt >= attempts || !Retryable(err) {
			return err
		}
		d := c.retry.backoff(attempt, err)
		if c.retry.OnRetry != nil {
			c.retry.OnRetry(attempt, err, d)
		}
		if sleepCtx(ctx, d) != nil {
			// Context died mid-backoff; the last real failure is the story.
			return err
		}
	}
}

// doOnce issues one JSON request and decodes either the 2xx body into
// out or the error body into an *APIError.
func (c *Client) doOnce(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if id := requestIDFrom(ctx); id != "" {
		req.Header.Set(reqIDHeader, id)
		if sid := spanParentFrom(ctx); sid != "" {
			req.Header.Set(traceParentHeader, id+":"+sid)
		}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()

	if resp.StatusCode/100 != 2 {
		// Prefer the daemon's echoed ID (it may have replaced ours).
		rid := resp.Header.Get(reqIDHeader)
		var eb ErrorBody
		if derr := json.NewDecoder(resp.Body).Decode(&eb); derr != nil || eb.Error.Code == "" {
			return &APIError{Status: resp.StatusCode, RequestID: rid, Code: "http_error",
				Message: fmt.Sprintf("%s %s: %s", method, path, resp.Status)}
		}
		eb.Error.Status = resp.StatusCode
		eb.Error.RequestID = rid
		if eb.Error.RetryAfterSecs == 0 {
			if s, _ := strconv.Atoi(resp.Header.Get("Retry-After")); s > 0 {
				eb.Error.RetryAfterSecs = s
			}
		}
		return &eb.Error
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
	}
	return nil
}
